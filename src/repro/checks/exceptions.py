"""Rule ``except-swallow``: broad exception handlers must not discard
the exception.

``except Exception`` backstops are legitimate at subsystem boundaries —
the sweep service converts simulation failures into structured HTTP 500
bodies, the cache maintenance paths must not corrupt the store on a
failed prune.  What is never legitimate is a broad handler that throws
the exception *away*: a bare ``pass``/``return`` hides bit-identity
violations, compile failures and cache corruption behind silently wrong
behaviour.

A handler catching ``Exception``, ``BaseException`` or everything
(``except:``) passes this rule if its body does at least one of:

* re-raise (``raise`` / ``raise X from exc``),
* call a logging method (``log.warning(...)``, ``logger.exception(...)``,
  ``logging.error(...)``, ``warnings.warn(...)``),
* reference the bound exception name at all — attaching ``exc`` to a
  structured response, an error field or a wrapped result counts as
  handling it.

Handlers for *specific* exception types (``except KeyError:``) are out
of scope: naming the type is already a statement about what is being
swallowed and why.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.checks.base import Checker, Finding, Project, register

#: Method / function names whose call counts as logging the failure.
_LOG_METHODS = frozenset({
    "debug", "info", "warning", "warn", "error", "exception", "critical",
    "log", "print_exc", "format_exc",
})

_BROAD_TYPES = frozenset({"Exception", "BaseException"})


def _catches_broadly(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:  # bare except:
        return True
    types = node.elts if isinstance(node, ast.Tuple) else [node]
    for t in types:
        if isinstance(t, ast.Name) and t.id in _BROAD_TYPES:
            return True
        if isinstance(t, ast.Attribute) and t.attr in _BROAD_TYPES:
            return True
    return False


def _handles_exception(handler: ast.ExceptHandler,
                       bound_name: Optional[str]) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _LOG_METHODS:
                return True
            if isinstance(func, ast.Name) and func.id in _LOG_METHODS:
                return True
        if bound_name is not None and isinstance(node, ast.Name) and \
                isinstance(node.ctx, ast.Load) and node.id == bound_name:
            return True
    return False


@register
class ExceptSwallowChecker(Checker):
    rule = "except-swallow"
    description = ("broad except handlers that neither re-raise, log, nor "
                   "reference the caught exception")

    def run(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for path in project.python_files():
            tree, error = project.ast_for(path)
            if tree is None:
                findings.append(self.finding(
                    project, path, 0, f"cannot analyse file: {error}"))
                continue
            for node in ast.walk(tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if not _catches_broadly(node):
                    continue
                if _handles_exception(node, node.name):
                    continue
                caught = "except:" if node.type is None else \
                    f"except {ast.unparse(node.type)}:"
                findings.append(self.finding(
                    project, path, node.lineno,
                    f"{caught} swallows the exception — re-raise it, log "
                    f"it, or attach it to the returned/structured context"))
        return findings
