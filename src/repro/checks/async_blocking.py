"""Rule ``async-blocking``: no synchronous blocking calls inside
``async def`` bodies under ``serve/``.

The sweep service runs a single asyncio event loop; one blocking call in
a coroutine stalls *every* in-flight request, which defeats the
single-flight design (requests that should coalesce instead pile up
behind the stalled handler).  Blocking work is fine — it just has to be
pushed through ``asyncio.to_thread`` / ``loop.run_in_executor`` the way
``serve/service.py`` pushes simulation runs.

Flagged inside coroutine bodies (nested ``def``/``async def`` are
excluded — an inner sync function is usually exactly the thing handed to
an executor):

* ``time.sleep`` (use ``asyncio.sleep``),
* ``subprocess.*`` and ``os.system`` / ``os.popen`` / ``os.wait*``,
* synchronous HTTP/socket work: ``urllib.request.*``, ``requests.*``,
  ``http.client.*``, ``socket.create_connection``,
* file I/O: builtin ``open`` and ``Path.read_text`` /
  ``Path.write_text`` / ``read_bytes`` / ``write_bytes`` method calls.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.checks.base import (Checker, Finding, Project, import_aliases,
                               qualified_name, register)

#: Only the service layer runs an event loop.
ASYNC_DIRS = ("serve",)

#: Dotted names (after import resolution) that block the loop outright.
_BLOCKING_CALLS = {
    "time.sleep": "use asyncio.sleep instead",
    "os.system": "run it via asyncio.to_thread or an executor",
    "os.popen": "run it via asyncio.to_thread or an executor",
    "os.wait": "run it via asyncio.to_thread or an executor",
    "os.waitpid": "run it via asyncio.to_thread or an executor",
    "socket.create_connection": "use asyncio.open_connection instead",
    "open": "wrap the file access in asyncio.to_thread",
}

#: Any call resolving under these module prefixes blocks.
_BLOCKING_PREFIXES = {
    "subprocess": "use asyncio.create_subprocess_exec instead",
    "urllib.request": "wrap the request in asyncio.to_thread",
    "requests": "wrap the request in asyncio.to_thread",
    "http.client": "wrap the request in asyncio.to_thread",
}

#: Method names that are file I/O no matter the receiver (Path API).
_BLOCKING_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})


def _blocking_reason(name: Optional[str]) -> Optional[str]:
    if name is None:
        return None
    if name in _BLOCKING_CALLS:
        return _BLOCKING_CALLS[name]
    for prefix, reason in _BLOCKING_PREFIXES.items():
        if name == prefix or name.startswith(prefix + "."):
            return reason
    return None


class _CoroutineVisitor(ast.NodeVisitor):
    """Collects blocking calls that execute *on* the event loop.

    Nested function definitions (sync or async) inside a coroutine body
    do not run when the coroutine runs, so recursion stops there; nested
    coroutines are visited independently via the module walk.
    """

    def __init__(self, checker: "AsyncBlockingChecker", project: Project,
                 path, aliases) -> None:
        self.checker = checker
        self.project = project
        self.path = path
        self.aliases = aliases
        self.findings: List[Finding] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        del node  # nested sync def: runs off-loop (typically in an executor)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        del node  # nested coroutine: visited via its own module-walk entry

    def visit_Call(self, node: ast.Call) -> None:
        name = qualified_name(node.func, self.aliases)
        reason = _blocking_reason(name)
        if reason is not None:
            self.findings.append(self.checker.finding(
                self.project, self.path, node.lineno,
                f"blocking call {name}(...) inside an async handler stalls "
                f"the event loop; {reason}"))
        elif isinstance(node.func, ast.Attribute) and \
                node.func.attr in _BLOCKING_METHODS:
            self.findings.append(self.checker.finding(
                self.project, self.path, node.lineno,
                f"blocking file I/O .{node.func.attr}(...) inside an async "
                f"handler stalls the event loop; wrap it in "
                f"asyncio.to_thread"))
        self.generic_visit(node)


@register
class AsyncBlockingChecker(Checker):
    rule = "async-blocking"
    description = ("synchronous blocking calls (sleep, subprocess, sync "
                   "HTTP, file I/O) inside async handlers under serve/")

    def run(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for path in project.python_files(*ASYNC_DIRS):
            tree, error = project.ast_for(path)
            if tree is None:
                findings.append(self.finding(
                    project, path, 0, f"cannot analyse file: {error}"))
                continue
            aliases = import_aliases(tree)
            for node in ast.walk(tree):
                if not isinstance(node, ast.AsyncFunctionDef):
                    continue
                visitor = _CoroutineVisitor(self, project, path, aliases)
                for stmt in node.body:
                    visitor.visit(stmt)
                findings.extend(visitor.findings)
        return findings
