"""Rule ``stats-abi``: the SimStats contract must agree across all four
of its definitions.

The statistics of one simulation exist in four places that have to stay
field-for-field identical — the drift class the gshare ``pred_raw``
incident came from:

1. the :class:`SimStats` / :class:`RegisterFileStats` dataclasses in
   ``src/repro/pipeline/stats.py`` (the Python ABI);
2. the ``ST_*`` / ``RF_*`` STATS-slot enums in
   ``src/repro/engine/accel/core.c`` (the C ABI);
3. the mirrored ``ST`` / ``RF`` namespaces in
   ``src/repro/engine/accel/loader.py`` (the bridge the exporter uses);
4. the stats assembly in ``src/repro/engine/accel/compiled.py``
   (``_assemble_stats`` / ``_register_file_stats``), which must populate
   *every* dataclass field from the C slots.

This checker parses all four (C with a small enum parser, Python with
``ast``) and fails on any field present in one but not the others:

* a C enum name/value that the loader namespace does not mirror exactly
  (and vice versa), including ``ST_N``;
* a SimStats field that ``_assemble_stats`` never assigns — a compiled
  run would silently return the dataclass default for it;
* an ``_assemble_stats`` assignment to a name that is no longer a
  SimStats field — dead weight that hides a rename;
* the same two directions for RegisterFileStats vs
  ``_register_file_stats``;
* a per-process self-check (``accel/__init__._self_check``) that no
  longer compares the *full* ``dataclasses.asdict`` of both runs.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.checks.base import Checker, Finding, Project, register

STATS_PY = Path("src/repro/pipeline/stats.py")
CORE_C = Path("src/repro/engine/accel/core.c")
LOADER_PY = Path("src/repro/engine/accel/loader.py")
COMPILED_PY = Path("src/repro/engine/accel/compiled.py")
ACCEL_INIT_PY = Path("src/repro/engine/accel/__init__.py")


# ----------------------------------------------------------------------
# C side
# ----------------------------------------------------------------------
_C_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
_C_ENUM_RE = re.compile(r"enum\s*\{([^}]*)\}", re.DOTALL)


def parse_c_enums(source: str) -> Dict[str, int]:
    """All ``NAME`` / ``NAME = <int>`` entries of every plain enum block,
    with C's implicit-increment semantics applied."""
    values: Dict[str, int] = {}
    stripped = _C_COMMENT_RE.sub("", source)
    for block in _C_ENUM_RE.findall(stripped):
        counter = 0
        for entry in block.split(","):
            entry = entry.strip()
            if not entry:
                continue
            name, _, raw_value = (part.strip() for part in entry.partition("="))
            if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
                continue
            if raw_value:
                try:
                    counter = int(raw_value, 0)
                except ValueError:
                    # Expression entries (e.g. derived sizes) end the
                    # reliable numbering of this block.
                    break
            values[name] = counter
            counter += 1
    return values


# ----------------------------------------------------------------------
# Python side
# ----------------------------------------------------------------------
def dataclass_fields(tree: ast.AST, class_name: str) -> Optional[Set[str]]:
    """Names of the annotated fields of one dataclass, or None if the
    class is missing."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {stmt.target.id for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)}
    return None


def _function(tree: ast.AST, name: str) -> Optional[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _namespace_values(tree: ast.AST, name: str) -> Optional[Dict[str, int]]:
    """Keyword arguments of ``NAME = _Namespace(...)`` as a dict."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                node.targets[0].id == name and isinstance(node.value, ast.Call):
            out = {}
            for keyword in node.value.keywords:
                if keyword.arg and isinstance(keyword.value, ast.Constant) \
                        and isinstance(keyword.value.value, int):
                    out[keyword.arg] = keyword.value.value
            return out
    return None


def _module_int(tree: ast.AST, name: str) -> Optional[int]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                node.targets[0].id == name and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, int):
            return node.value.value
    return None


def assembled_stats_fields(fn: ast.FunctionDef,
                           ) -> Tuple[Set[str], Dict[str, int]]:
    """Fields populated by ``_assemble_stats``: constructor keywords of
    ``SimStats(...)`` plus every ``stats.<field> = ...`` target.

    Returns ``(names, line_of_name)`` so findings can point somewhere.
    """
    names: Set[str] = set()
    lines: Dict[str, int] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "SimStats":
            for keyword in node.keywords:
                if keyword.arg:
                    names.add(keyword.arg)
                    lines[keyword.arg] = node.lineno
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "stats":
                    names.add(target.attr)
                    lines[target.attr] = target.lineno
    return names, lines


def constructor_keywords(fn: ast.FunctionDef, class_name: str) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == class_name:
            out.update(k.arg for k in node.keywords if k.arg)
    return out


# ----------------------------------------------------------------------
@register
class StatsABIChecker(Checker):
    rule = "stats-abi"
    description = ("SimStats drift between the Python dataclass, the C "
                   "STATS enum, the loader mirror and the compiled-stats "
                   "assembly")

    def run(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        inputs = {}
        for label, rel in (("stats", STATS_PY), ("loader", LOADER_PY),
                           ("compiled", COMPILED_PY),
                           ("accel_init", ACCEL_INIT_PY)):
            tree, error = project.ast_for(project.root / rel)
            if tree is None:
                findings.append(Finding(self.rule, rel.as_posix(), 0,
                                        f"cannot analyse file: {error}"))
                return findings
            inputs[label] = tree
        core_source = project.read_text(project.root / CORE_C)
        if core_source is None:
            findings.append(Finding(self.rule, CORE_C.as_posix(), 0,
                                    "cannot read the C core source"))
            return findings

        findings.extend(self._check_c_vs_loader(core_source, inputs["loader"]))
        findings.extend(self._check_python_assembly(
            inputs["stats"], inputs["compiled"]))
        findings.extend(self._check_self_check(inputs["accel_init"]))
        return findings

    # ------------------------------------------------------------------
    def _check_c_vs_loader(self, core_source: str,
                           loader_tree: ast.AST) -> List[Finding]:
        findings: List[Finding] = []
        c_enums = parse_c_enums(core_source)
        for namespace, prefix in (("ST", "ST_"), ("RF", "RF_")):
            loader_values = _namespace_values(loader_tree, namespace)
            if loader_values is None:
                findings.append(Finding(
                    self.rule, LOADER_PY.as_posix(), 0,
                    f"loader.py no longer defines the {namespace} "
                    f"namespace mirroring core.c's {prefix}* enum"))
                continue
            c_values = {name[len(prefix):]: value
                        for name, value in c_enums.items()
                        if name.startswith(prefix) and name != "ST_N"}
            for name in sorted(set(c_values) | set(loader_values)):
                c_val = c_values.get(name)
                py_val = loader_values.get(name)
                if c_val is None:
                    findings.append(Finding(
                        self.rule, CORE_C.as_posix(), 0,
                        f"loader.py {namespace}.{name}={py_val} has no "
                        f"{prefix}{name} slot in core.c's STATS enum"))
                elif py_val is None:
                    findings.append(Finding(
                        self.rule, LOADER_PY.as_posix(), 0,
                        f"core.c defines {prefix}{name}={c_val} but "
                        f"loader.py's {namespace} namespace does not "
                        f"mirror it"))
                elif c_val != py_val:
                    findings.append(Finding(
                        self.rule, LOADER_PY.as_posix(), 0,
                        f"slot value drift: core.c {prefix}{name}={c_val} "
                        f"vs loader.py {namespace}.{name}={py_val}"))
        c_st_n = c_enums.get("ST_N")
        loader_st_n = _module_int(loader_tree, "ST_N")
        if c_st_n != loader_st_n:
            findings.append(Finding(
                self.rule, LOADER_PY.as_posix(), 0,
                f"STATS array length drift: core.c ST_N={c_st_n} vs "
                f"loader.py ST_N={loader_st_n}"))
        return findings

    # ------------------------------------------------------------------
    def _check_python_assembly(self, stats_tree: ast.AST,
                               compiled_tree: ast.AST) -> List[Finding]:
        findings: List[Finding] = []
        sim_fields = dataclass_fields(stats_tree, "SimStats")
        rf_fields = dataclass_fields(stats_tree, "RegisterFileStats")
        if sim_fields is None or rf_fields is None:
            findings.append(Finding(
                self.rule, STATS_PY.as_posix(), 0,
                "stats.py no longer defines SimStats/RegisterFileStats"))
            return findings

        assemble = _function(compiled_tree, "_assemble_stats")
        if assemble is None:
            findings.append(Finding(
                self.rule, COMPILED_PY.as_posix(), 0,
                "compiled.py no longer defines _assemble_stats"))
        else:
            assembled, lines = assembled_stats_fields(assemble)
            for name in sorted(sim_fields - assembled):
                findings.append(Finding(
                    self.rule, COMPILED_PY.as_posix(), assemble.lineno,
                    f"SimStats field {name!r} is never assigned by "
                    f"_assemble_stats — compiled runs would silently "
                    f"report its dataclass default"))
            for name in sorted(assembled - sim_fields):
                findings.append(Finding(
                    self.rule, COMPILED_PY.as_posix(),
                    lines.get(name, assemble.lineno),
                    f"_assemble_stats populates {name!r}, which is not a "
                    f"SimStats field — stale assembly after a rename or "
                    f"removal"))

        rf_fn = _function(compiled_tree, "_register_file_stats")
        if rf_fn is None:
            findings.append(Finding(
                self.rule, COMPILED_PY.as_posix(), 0,
                "compiled.py no longer defines _register_file_stats"))
        else:
            kwargs = constructor_keywords(rf_fn, "RegisterFileStats")
            for name in sorted(rf_fields - kwargs):
                findings.append(Finding(
                    self.rule, COMPILED_PY.as_posix(), rf_fn.lineno,
                    f"RegisterFileStats field {name!r} is never passed by "
                    f"_register_file_stats — compiled runs would silently "
                    f"report its dataclass default"))
            for name in sorted(kwargs - rf_fields):
                findings.append(Finding(
                    self.rule, COMPILED_PY.as_posix(), rf_fn.lineno,
                    f"_register_file_stats passes {name!r}, which is not "
                    f"a RegisterFileStats field"))
        return findings

    # ------------------------------------------------------------------
    def _check_self_check(self, accel_tree: ast.AST) -> List[Finding]:
        """The per-process divergence gate must compare full asdict()s."""
        fn = _function(accel_tree, "_self_check")
        if fn is None:
            return [Finding(
                self.rule, ACCEL_INIT_PY.as_posix(), 0,
                "accel/__init__.py no longer defines _self_check — the "
                "per-process compiled-vs-Python divergence gate is gone")]
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute) and node.attr == "asdict":
                return []
            if isinstance(node, ast.Name) and node.id == "asdict":
                return []
        return [Finding(
            self.rule, ACCEL_INIT_PY.as_posix(), fn.lineno,
            "_self_check no longer compares dataclasses.asdict() of both "
            "runs — a partial comparison list can hide stats drift")]
