"""Framework core of ``repro-lint``: findings, project model, registry.

A :class:`Checker` analyses a :class:`Project` (a repository root) and
yields :class:`Finding` objects.  The driver (:func:`run_checks`) then
applies two suppression layers before anything is reported:

* **in-source suppressions** — ``# repro-lint: disable=<rule> -- reason``
  comments.  A trailing comment (code before the ``#``) suppresses
  findings of that rule on that line only; a comment on a line of its
  own suppresses the rule for the whole file.  The ``-- reason`` part is
  mandatory: a suppression without one does not suppress and is itself
  reported (rule ``bad-suppression``), so every silenced finding carries
  its justification next to the code it silences.
* **the committed baseline** — grandfathered findings recorded in
  ``lint-baseline.json`` with a one-line justification each.  Baselined
  findings don't fail the run; baseline entries that no longer match
  anything are reported as *stale* so the file shrinks over time.

Finding identity (the baseline fingerprint) is ``(rule, path, message)``
— deliberately **not** the line number, so unrelated edits above a
grandfathered finding never invalidate the baseline.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Finding", "Project", "Checker", "CHECKERS", "register",
           "Baseline", "LintResult", "run_checks", "find_project_root"]


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one place in the tree."""

    rule: str
    #: repository-relative POSIX path
    path: str
    #: 1-based line number (0 for whole-file findings)
    line: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity used by the baseline (line-number free)."""
        payload = f"{self.rule}\x00{self.path}\x00{self.message}".encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message, "fingerprint": self.fingerprint}


# ----------------------------------------------------------------------
# Project model
# ----------------------------------------------------------------------
def find_project_root(start: Optional[Path] = None) -> Path:
    """Locate the repository root (the directory holding ``src/repro``).

    Searches upward from ``start`` (default: the current directory);
    falls back to the root this installed package lives under, so the
    console script works from anywhere inside a checkout.
    """
    candidates = []
    base = (start or Path.cwd()).resolve()
    candidates.extend([base, *base.parents])
    package_root = Path(__file__).resolve().parents[3]
    candidates.append(package_root)
    for candidate in candidates:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    raise FileNotFoundError(
        f"cannot find a repository root (a directory containing src/repro) "
        f"above {base} or at {package_root}")


class Project:
    """A checked-out repository, with cached file reads and ASTs."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root).resolve()
        self.package = self.root / "src" / "repro"
        self._text: Dict[Path, Optional[str]] = {}
        self._trees: Dict[Path, Tuple[Optional[ast.AST], Optional[str]]] = {}

    def rel(self, path: Path) -> str:
        """Repository-relative POSIX path (finding identity)."""
        return path.resolve().relative_to(self.root).as_posix()

    def read_text(self, path: Path) -> Optional[str]:
        """File contents, or None if unreadable (cached)."""
        path = Path(path)
        if path not in self._text:
            try:
                self._text[path] = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                self._text[path] = None
        return self._text[path]

    def ast_for(self, path: Path) -> Tuple[Optional[ast.AST], Optional[str]]:
        """``(tree, error)`` for one Python file (cached).

        ``tree`` is None when the file is unreadable or does not parse;
        ``error`` then carries the reason.
        """
        path = Path(path)
        if path not in self._trees:
            text = self.read_text(path)
            if text is None:
                self._trees[path] = (None, "unreadable file")
            else:
                try:
                    self._trees[path] = (ast.parse(text), None)
                except SyntaxError as exc:
                    self._trees[path] = (None, f"syntax error: {exc}")
        return self._trees[path]

    def python_files(self, *subdirs: str) -> List[Path]:
        """Sorted ``*.py`` files under ``src/repro/<subdir>`` for each
        ``subdir`` ("" = the whole package)."""
        out: List[Path] = []
        roots = [self.package / sub if sub else self.package
                 for sub in (subdirs or ("",))]
        for directory in roots:
            if not directory.is_dir():
                continue
            out.extend(path for path in directory.rglob("*.py")
                       if "__pycache__" not in path.parts)
        return sorted(set(out))


# ----------------------------------------------------------------------
# Checker registry
# ----------------------------------------------------------------------
class Checker:
    """Base class: subclass, set ``rule``/``description``, implement
    :meth:`run`, and decorate with :func:`register`."""

    #: short kebab-case rule id (used in suppressions and the baseline)
    rule: str = ""
    #: one-line description for ``repro-lint --list-rules``
    description: str = ""

    def run(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, project: Project, path: Path, line: int,
                message: str) -> Finding:
        return Finding(rule=self.rule, path=project.rel(path), line=line,
                       message=message)


CHECKERS: Dict[str, Checker] = {}


def register(cls):
    """Class decorator adding one checker instance to the registry."""
    instance = cls()
    if not instance.rule:
        raise ValueError(f"{cls.__name__} has no rule id")
    if instance.rule in CHECKERS:
        raise ValueError(f"duplicate checker rule {instance.rule!r}")
    CHECKERS[instance.rule] = instance
    return cls


# ----------------------------------------------------------------------
# In-source suppressions
# ----------------------------------------------------------------------
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,-]+)(?:\s+--\s*(\S.*))?")


@dataclasses.dataclass
class _FileSuppressions:
    #: rule -> reason, for whole-file suppressions
    file_level: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: line -> {rule: reason}
    line_level: Dict[int, Dict[str, str]] = dataclasses.field(default_factory=dict)
    #: malformed suppression comments (missing reason / unknown rule)
    bad: List[Finding] = dataclasses.field(default_factory=list)


def _parse_suppressions(rel_path: str, text: str,
                        known_rules: Sequence[str]) -> _FileSuppressions:
    out = _FileSuppressions()
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = [rule.strip() for rule in match.group(1).split(",") if rule.strip()]
        reason = match.group(2)
        if reason is None or not reason.strip():
            out.bad.append(Finding(
                rule="bad-suppression", path=rel_path, line=lineno,
                message=f"suppression of {', '.join(rules)} carries no "
                        f"'-- reason'; it is ignored until one is given"))
            continue
        unknown = [rule for rule in rules if rule not in known_rules]
        if unknown:
            out.bad.append(Finding(
                rule="bad-suppression", path=rel_path, line=lineno,
                message=f"suppression names unknown rule(s) "
                        f"{', '.join(unknown)} (known: "
                        f"{', '.join(sorted(known_rules))})"))
        valid = [rule for rule in rules if rule in known_rules]
        whole_file = line.split("#", 1)[0].strip() == ""
        for rule in valid:
            if whole_file:
                out.file_level[rule] = reason.strip()
            else:
                out.line_level.setdefault(lineno, {})[rule] = reason.strip()
    return out


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
BASELINE_NAME = "lint-baseline.json"


@dataclasses.dataclass
class Baseline:
    """The committed list of grandfathered findings."""

    #: fingerprint -> entry dict (rule/path/message/justification)
    entries: Dict[str, dict] = dataclasses.field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls()
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"unreadable baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != 1:
            raise ValueError(f"baseline {path} must be a version-1 document")
        entries = {}
        for entry in payload.get("entries", []):
            fingerprint = entry.get("fingerprint")
            if not isinstance(fingerprint, str):
                raise ValueError(f"baseline {path}: entry without fingerprint")
            entries[fingerprint] = entry
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding],
                      justifications: Optional[Dict[str, str]] = None,
                      ) -> "Baseline":
        entries = {}
        justifications = justifications or {}
        for finding in findings:
            entries[finding.fingerprint] = {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "justification": justifications.get(
                    finding.fingerprint, "TODO: justify this entry"),
            }
        return cls(entries=entries)

    def dump(self, path: Path) -> None:
        ordered = sorted(self.entries.values(),
                         key=lambda e: (e.get("path", ""), e.get("rule", ""),
                                        e.get("message", "")))
        payload = {"version": 1, "entries": ordered}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
@dataclasses.dataclass
class LintResult:
    """Everything one lint run produced, pre-partitioned for reporting."""

    #: findings that fail the run (not suppressed, not baselined)
    findings: List[Finding] = dataclasses.field(default_factory=list)
    #: findings silenced by an in-source suppression, with its reason
    suppressed: List[Tuple[Finding, str]] = dataclasses.field(default_factory=list)
    #: findings matched by the committed baseline
    baselined: List[Finding] = dataclasses.field(default_factory=list)
    #: baseline fingerprints that matched nothing this run
    stale_baseline: List[dict] = dataclasses.field(default_factory=list)
    #: rules that actually ran
    rules: List[str] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "clean": self.clean,
            "rules": self.rules,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [dict(f.to_dict(), reason=reason)
                           for f, reason in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": self.stale_baseline,
        }


def run_checks(project: Project, rules: Optional[Sequence[str]] = None,
               baseline: Optional[Baseline] = None) -> LintResult:
    """Run the selected checkers over ``project`` and partition the
    findings through suppressions and the baseline."""
    selected = sorted(CHECKERS) if rules is None else list(rules)
    unknown = [rule for rule in selected if rule not in CHECKERS]
    if unknown:
        raise ValueError(f"unknown rule(s): {', '.join(unknown)} "
                         f"(known: {', '.join(sorted(CHECKERS))})")
    raw: List[Finding] = []
    for rule in selected:
        raw.extend(CHECKERS[rule].run(project))

    known_rules = sorted(CHECKERS)
    suppressions: Dict[str, _FileSuppressions] = {}

    def suppressions_for(rel_path: str) -> _FileSuppressions:
        if rel_path not in suppressions:
            text = project.read_text(project.root / rel_path)
            suppressions[rel_path] = (
                _parse_suppressions(rel_path, text, known_rules)
                if text is not None and rel_path.endswith(".py")
                else _FileSuppressions())
        return suppressions[rel_path]

    result = LintResult(rules=selected)
    baseline = baseline or Baseline()
    matched_fingerprints = set()
    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule)):
        per_file = suppressions_for(finding.path)
        reason = per_file.line_level.get(finding.line, {}).get(finding.rule)
        if reason is None:
            reason = per_file.file_level.get(finding.rule)
        if reason is not None:
            result.suppressed.append((finding, reason))
            continue
        if finding.fingerprint in baseline.entries:
            matched_fingerprints.add(finding.fingerprint)
            result.baselined.append(finding)
            continue
        result.findings.append(finding)

    # Malformed suppression comments are findings in their own right —
    # scan every package file, not only those with findings, so a
    # reason-less or unknown-rule suppression can never hide silently.
    visited = {f.path for f in raw}
    visited.update(project.rel(path) for path in project.python_files())
    for rel_path in sorted(visited):
        result.findings.extend(suppressions_for(rel_path).bad)

    result.stale_baseline = [
        entry for fingerprint, entry in sorted(baseline.entries.items())
        if fingerprint not in matched_fingerprints]
    return result


# ----------------------------------------------------------------------
# Shared AST helpers (used by several checkers)
# ----------------------------------------------------------------------
def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted module/attribute they refer to.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy import random as rnd`` -> ``{"rnd": "numpy.random"}``;
    ``from time import time`` -> ``{"time": "time.time"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return aliases


def qualified_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain to a dotted name, through imports.

    Returns None for anything that isn't a plain ``a.b.c`` chain rooted
    at a known import (or at a bare name, returned as itself).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))
