"""Rule ``cache-key``: every config knob the engine reads must be covered
by the sweep-cache key derivation.

A cached sweep point is only valid if its key captures **everything**
the simulation depends on.  The key derivation
(``analysis/cache.py::point_key``) covers the full ``ProcessorConfig``
via ``config_digest`` — which canonicalises *every dataclass field* with
``dataclasses.fields`` — plus the workload content digest, trace length,
seed, code digest and requested engine backend.

Two things can silently break that completeness:

1. engine code starts reading a configuration attribute that is **not a
   declared ProcessorConfig field** (a typo, a monkey-patched extra, a
   ``getattr`` side-channel) — its value influences the simulation but
   never the key, so a change to it serves stale hits;
2. the key derivation itself loses one of its ingredients (someone
   "simplifies" ``point_key`` or replaces the all-fields
   ``config_digest`` with a hand-maintained list).

This checker guards both directions: it cross-checks every
``config.<attr>`` / ``cfg.<attr>`` / ``state.config.<attr>`` read under
``engine/`` and ``core/`` against the fields, properties and methods
declared on ``ProcessorConfig``, and it verifies the required
ingredients are still present in ``point_key`` / ``config_digest`` /
``_canonical``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.checks.base import Checker, Finding, Project, register

CONFIG_PY = Path("src/repro/pipeline/config.py")
CACHE_PY = Path("src/repro/analysis/cache.py")

#: Directories whose ProcessorConfig reads must be key-covered.
ENGINE_DIRS = ("engine", "core")

#: Bare variable names treated as a ProcessorConfig receiver.
_CONFIG_NAMES = frozenset({"config", "cfg", "proc_config", "processor_config"})

#: ``<name>.config.<attr>`` receivers treated as a ProcessorConfig.
_CONFIG_HOLDERS = frozenset({"self", "state", "machine_state"})

#: Ingredients ``point_key`` must keep folding into every key.
_POINT_KEY_INGREDIENTS = ("config_digest", "workload_digest", "code_digest",
                          "requested_backend", "CACHE_SCHEMA_VERSION",
                          "trace_length", "seed")


# ----------------------------------------------------------------------
def declared_config_surface(tree: ast.AST,
                            ) -> Optional[Tuple[Set[str], Set[str]]]:
    """``(fields, callables)`` of the ProcessorConfig class definition.

    ``fields`` are the annotated dataclass fields (what the cache key
    digests); ``callables`` are properties/methods — reads of those are
    pure functions of the fields and therefore key-covered too.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "ProcessorConfig":
            fields: Set[str] = set()
            callables: Set[str] = set()
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and \
                        isinstance(stmt.target, ast.Name):
                    fields.add(stmt.target.id)
                elif isinstance(stmt, ast.FunctionDef):
                    callables.add(stmt.name)
            return fields, callables
    return None


def config_attribute_reads(tree: ast.AST) -> Dict[str, List[int]]:
    """All ``<config receiver>.<attr>`` reads in one module.

    Only syntactically certain receivers are counted: a bare name from
    :data:`_CONFIG_NAMES`, or ``<holder>.config`` with the holder in
    :data:`_CONFIG_HOLDERS` — a ``cache.config`` (some other class's
    config object) is deliberately not matched.
    """
    reads: Dict[str, List[int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        value = node.value
        is_config = (isinstance(value, ast.Name)
                     and value.id in _CONFIG_NAMES)
        if not is_config and isinstance(value, ast.Attribute) and \
                value.attr == "config" and \
                isinstance(value.value, ast.Name) and \
                value.value.id in _CONFIG_HOLDERS:
            is_config = True
        if is_config:
            reads.setdefault(node.attr, []).append(node.lineno)
    return reads


def _function(tree: ast.AST, name: str) -> Optional[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _names_used(fn: ast.FunctionDef) -> Set[str]:
    """Every bare name and attribute name referenced inside ``fn``."""
    used: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            used.add(node.attr)
    return used


# ----------------------------------------------------------------------
@register
class CacheKeyChecker(Checker):
    rule = "cache-key"
    description = ("ProcessorConfig reads in engine/ and core/ that the "
                   "sweep-cache key derivation would not cover")

    def run(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        config_tree, error = project.ast_for(project.root / CONFIG_PY)
        if config_tree is None:
            return [Finding(self.rule, CONFIG_PY.as_posix(), 0,
                            f"cannot analyse file: {error}")]
        surface = declared_config_surface(config_tree)
        if surface is None:
            return [Finding(self.rule, CONFIG_PY.as_posix(), 0,
                            "config.py no longer defines ProcessorConfig")]
        fields, callables = surface
        covered = fields | callables

        for path in project.python_files(*ENGINE_DIRS):
            tree, error = project.ast_for(path)
            if tree is None:
                findings.append(self.finding(
                    project, path, 0, f"cannot analyse file: {error}"))
                continue
            for attr, lines in sorted(config_attribute_reads(tree).items()):
                if attr in covered or attr.startswith("__"):
                    continue
                findings.append(self.finding(
                    project, path, lines[0],
                    f"reads config.{attr}, which is not a declared "
                    f"ProcessorConfig field/property — its value would "
                    f"influence simulation without entering the sweep-cache "
                    f"key (stale-hit risk); declare it on ProcessorConfig"))

        findings.extend(self._check_key_derivation(project))
        return findings

    # ------------------------------------------------------------------
    def _check_key_derivation(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        tree, error = project.ast_for(project.root / CACHE_PY)
        if tree is None:
            return [Finding(self.rule, CACHE_PY.as_posix(), 0,
                            f"cannot analyse file: {error}")]
        rel = CACHE_PY.as_posix()

        point_key = _function(tree, "point_key")
        if point_key is None:
            findings.append(Finding(
                self.rule, rel, 0, "cache.py no longer defines point_key"))
        else:
            used = _names_used(point_key)
            for ingredient in _POINT_KEY_INGREDIENTS:
                if ingredient not in used:
                    findings.append(Finding(
                        self.rule, rel, point_key.lineno,
                        f"point_key no longer folds {ingredient!r} into "
                        f"the sweep-point key — entries keyed without it "
                        f"can serve stale results"))

        config_digest = _function(tree, "config_digest")
        if config_digest is None:
            findings.append(Finding(
                self.rule, rel, 0,
                "cache.py no longer defines config_digest"))
        elif "_canonical" not in _names_used(config_digest):
            findings.append(Finding(
                self.rule, rel, config_digest.lineno,
                "config_digest no longer canonicalises the full config "
                "via _canonical — a partial digest cannot cover every "
                "field"))

        canonical = _function(tree, "_canonical")
        if canonical is None:
            findings.append(Finding(
                self.rule, rel, 0, "cache.py no longer defines _canonical"))
        elif "fields" not in _names_used(canonical):
            findings.append(Finding(
                self.rule, rel, canonical.lineno,
                "_canonical no longer walks dataclasses.fields(...) — "
                "hand-enumerated fields will drift from ProcessorConfig"))
        return findings
