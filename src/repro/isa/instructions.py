"""Dynamic instruction records consumed by the simulator.

An :class:`Instruction` is one entry of a dynamic trace.  It is immutable
and deliberately small: the simulator annotates its own per-in-flight-copy
state in the reorder structure (:class:`repro.backend.ros.ROSEntry`), never
on the trace record itself, so the same trace can be replayed under many
configurations (and across wrong-path squashes) without copying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.opcodes import (
    OpClass,
    is_branch_op,
    is_load_op,
    is_memory_op,
    is_store_op,
    uses_fp_dest,
)
from repro.isa.registers import NUM_LOGICAL, RegClass


#: A register reference as carried by an instruction: (register class, index).
RegRef = Tuple[RegClass, int]

#: Per-op predicate/name table: op -> (is_branch, is_load, is_store, is_mem,
#: op_name).  Instruction construction is on the wrong-path generator's hot
#: path (a fresh record per injected instruction), so the five derived
#: fields are filled from one dict lookup instead of five predicate calls.
_OP_TRAITS = {
    op: (is_branch_op(op), is_load_op(op), is_store_op(op), is_memory_op(op),
         op.name)
    for op in OpClass
}


@dataclass(frozen=True, slots=True)
class Instruction:
    """One dynamic instruction of a trace.

    Attributes
    ----------
    pc:
        Instruction address.  Used by the fetch unit, the branch predictor
        and the instruction cache.  Synthetic traces lay code out on a
        4-byte grid like a RISC ISA.
    op:
        Operation class (:class:`repro.isa.opcodes.OpClass`).
    dest:
        Destination logical register, or ``None`` for stores, branches and
        nops.
    srcs:
        Tuple of source logical registers (0, 1 or 2 entries).
    taken:
        For branches, the actual outcome recorded in the trace.
    target:
        For branches, the actual target address (used by the BTB model).
    mem_addr:
        For loads/stores, the effective address recorded in the trace.
    wrong_path:
        True for synthetic instructions injected past an unresolved,
        mispredicted branch.  Wrong-path instructions are renamed and may
        allocate physical registers and schedule conditional releases, but
        they are squashed when the branch resolves and never commit.
    """

    pc: int
    op: OpClass
    dest: Optional[RegRef] = None
    srcs: Tuple[RegRef, ...] = ()
    taken: bool = False
    target: int = 0
    mem_addr: int = 0
    wrong_path: bool = False

    # ------------------------------------------------------------------
    # Derived predicates, precomputed once at construction.  A trace
    # record is consulted every cycle its instruction is in flight (and
    # traces are replayed across whole configuration sweeps), so these
    # must be plain attribute loads, not property calls.  They are
    # excluded from comparison/repr: they are functions of ``op``.
    # ------------------------------------------------------------------
    is_branch: bool = field(init=False, repr=False, compare=False)
    is_load: bool = field(init=False, repr=False, compare=False)
    is_store: bool = field(init=False, repr=False, compare=False)
    is_mem: bool = field(init=False, repr=False, compare=False)
    op_name: str = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        set_attr = object.__setattr__  # frozen dataclass: bypass the guard
        # Normalise register references to RegClass members so the rename
        # hot path never converts (builders already pass members; raw ints
        # from hand-written tests are upgraded here, once).
        if self.dest is not None and type(self.dest[0]) is not RegClass:
            set_attr(self, "dest", (RegClass(self.dest[0]), self.dest[1]))
        for reg_class, _index in self.srcs:
            if type(reg_class) is not RegClass:
                set_attr(self, "srcs", tuple((RegClass(cls), index)
                                             for cls, index in self.srcs))
                break
        is_branch, is_load, is_store, is_mem, op_name = _OP_TRAITS[self.op]
        set_attr(self, "is_branch", is_branch)
        set_attr(self, "is_load", is_load)
        set_attr(self, "is_store", is_store)
        set_attr(self, "is_mem", is_mem)
        set_attr(self, "op_name", op_name)

    @property
    def has_dest(self) -> bool:
        """True when the instruction writes a logical register."""
        return self.dest is not None

    def validate(self) -> None:
        """Raise :class:`ValueError` if the record is internally inconsistent.

        Trace generators call this in debug/test paths; the simulator
        assumes validated traces.
        """
        if self.dest is not None:
            reg_class, index = self.dest
            if not (0 <= index < NUM_LOGICAL[reg_class]):
                raise ValueError(f"destination register out of range: {self.dest}")
            if self.is_store or self.is_branch:
                raise ValueError(f"{self.op.name} must not have a destination")
            expected_class = RegClass.FP if uses_fp_dest(self.op) else RegClass.INT
            if self.op is not OpClass.NOP and reg_class is not expected_class:
                raise ValueError(
                    f"{self.op.name} destination must be {expected_class.name}"
                )
        for reg_class, index in self.srcs:
            if not (0 <= index < NUM_LOGICAL[reg_class]):
                raise ValueError(f"source register out of range: {(reg_class, index)}")
        if self.is_mem and self.mem_addr < 0:
            raise ValueError("memory operations need a non-negative address")
        if self.is_branch and self.target < 0:
            raise ValueError("branches need a non-negative target")
        if len(self.srcs) > 3:
            raise ValueError("at most three source registers are supported")


@dataclass
class InstructionBuilder:
    """Convenience factory producing validated :class:`Instruction` records.

    The builder keeps a running program counter so callers describing a
    straight-line kernel do not have to manage addresses by hand; branches
    may override the next pc via :meth:`branch`.
    """

    pc: int = 0x1000
    step: int = 4
    validate: bool = True
    emitted: list = field(default_factory=list)

    def _emit(self, inst: Instruction) -> Instruction:
        if self.validate:
            inst.validate()
        self.emitted.append(inst)
        self.pc += self.step
        return inst

    def alu(self, dest: int, srcs: Tuple[int, ...] = (), *, fp: bool = False,
            op: Optional[OpClass] = None) -> Instruction:
        """Emit an ALU instruction.

        ``fp`` selects the FP register class/default op (FP_ADD); ``op``
        may override the operation class (e.g. ``OpClass.INT_MULT``).
        """
        reg_class = RegClass.FP if fp else RegClass.INT
        if op is None:
            op = OpClass.FP_ADD if fp else OpClass.INT_ALU
        return self._emit(
            Instruction(
                pc=self.pc,
                op=op,
                dest=(reg_class, dest),
                srcs=tuple((reg_class, s) for s in srcs),
            )
        )

    def load(self, dest: int, addr_reg: int, mem_addr: int, *,
             fp: bool = False) -> Instruction:
        """Emit a load whose address operand is an integer register."""
        op = OpClass.FP_LOAD if fp else OpClass.LOAD
        dest_class = RegClass.FP if fp else RegClass.INT
        return self._emit(
            Instruction(
                pc=self.pc,
                op=op,
                dest=(dest_class, dest),
                srcs=((RegClass.INT, addr_reg),),
                mem_addr=mem_addr,
            )
        )

    def store(self, value_reg: int, addr_reg: int, mem_addr: int, *,
              fp: bool = False) -> Instruction:
        """Emit a store: sources are the value register and the address register."""
        op = OpClass.FP_STORE if fp else OpClass.STORE
        value_class = RegClass.FP if fp else RegClass.INT
        return self._emit(
            Instruction(
                pc=self.pc,
                op=op,
                srcs=((value_class, value_reg), (RegClass.INT, addr_reg)),
                mem_addr=mem_addr,
            )
        )

    def branch(self, taken: bool, target: int, srcs: Tuple[int, ...] = ()) -> Instruction:
        """Emit a conditional branch with the given actual outcome/target."""
        return self._emit(
            Instruction(
                pc=self.pc,
                op=OpClass.BRANCH,
                srcs=tuple((RegClass.INT, s) for s in srcs),
                taken=taken,
                target=target,
            )
        )

    def nop(self) -> Instruction:
        """Emit a no-operation filler instruction."""
        return self._emit(Instruction(pc=self.pc, op=OpClass.NOP))

    def trace(self) -> list:
        """Return (a copy of) every instruction emitted so far, in order."""
        return list(self.emitted)
