"""Operation classes, functional-unit kinds, and latencies.

The simulator does not interpret real opcodes; it only needs the
*operation class* of each dynamic instruction, which determines

* which functional-unit pool executes it (Table 2 of the paper),
* its execution latency,
* whether it reads/writes memory, and
* whether it is a control-flow instruction.

The latencies below are the ones listed in Table 2:

=================  =====================  ========
Operation class    Functional unit        Latency
=================  =====================  ========
INT_ALU            simple int (8 units)   1
INT_MULT           int mult (4 units)     7
FP_ADD             simple FP (6 units)    4
FP_MULT            FP mult (4 units)      4
FP_DIV             FP div (4 units)       16
LOAD / STORE       load/store (4 units)   1 + memory
BRANCH             simple int             1
=================  =====================  ========
"""

from __future__ import annotations

import enum
from typing import Mapping


class OpClass(enum.IntEnum):
    """Dynamic instruction operation class."""

    INT_ALU = 0
    INT_MULT = 1
    FP_ADD = 2
    FP_MULT = 3
    FP_DIV = 4
    LOAD = 5
    STORE = 6
    BRANCH = 7
    FP_LOAD = 8
    FP_STORE = 9
    NOP = 10


class FUKind(enum.IntEnum):
    """Functional unit pools of the simulated processor (Table 2)."""

    SIMPLE_INT = 0
    INT_MULT = 1
    SIMPLE_FP = 2
    FP_MULT = 3
    FP_DIV = 4
    LOAD_STORE = 5


#: Mapping from operation class to the functional-unit pool that executes it.
FU_KIND: Mapping[OpClass, FUKind] = {
    OpClass.INT_ALU: FUKind.SIMPLE_INT,
    OpClass.INT_MULT: FUKind.INT_MULT,
    OpClass.FP_ADD: FUKind.SIMPLE_FP,
    OpClass.FP_MULT: FUKind.FP_MULT,
    OpClass.FP_DIV: FUKind.FP_DIV,
    OpClass.LOAD: FUKind.LOAD_STORE,
    OpClass.STORE: FUKind.LOAD_STORE,
    OpClass.FP_LOAD: FUKind.LOAD_STORE,
    OpClass.FP_STORE: FUKind.LOAD_STORE,
    OpClass.BRANCH: FUKind.SIMPLE_INT,
    OpClass.NOP: FUKind.SIMPLE_INT,
}

#: Execution latency (cycles spent in the functional unit) per operation
#: class.  Memory operations add the data-cache access latency on top of
#: the 1-cycle address generation modelled here.
DEFAULT_LATENCY: Mapping[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MULT: 7,
    OpClass.FP_ADD: 4,
    OpClass.FP_MULT: 4,
    OpClass.FP_DIV: 16,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.FP_LOAD: 1,
    OpClass.FP_STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.NOP: 1,
}

_MEMORY_OPS = frozenset(
    {OpClass.LOAD, OpClass.STORE, OpClass.FP_LOAD, OpClass.FP_STORE}
)
_LOAD_OPS = frozenset({OpClass.LOAD, OpClass.FP_LOAD})
_STORE_OPS = frozenset({OpClass.STORE, OpClass.FP_STORE})
_FP_DEST_OPS = frozenset(
    {OpClass.FP_ADD, OpClass.FP_MULT, OpClass.FP_DIV, OpClass.FP_LOAD}
)


def is_memory_op(op: OpClass) -> bool:
    """True for loads and stores (integer or floating point)."""
    return op in _MEMORY_OPS


def is_load_op(op: OpClass) -> bool:
    """True for integer and floating-point loads."""
    return op in _LOAD_OPS


def is_store_op(op: OpClass) -> bool:
    """True for integer and floating-point stores."""
    return op in _STORE_OPS


def is_branch_op(op: OpClass) -> bool:
    """True for control-flow instructions."""
    return op is OpClass.BRANCH


def uses_fp_dest(op: OpClass) -> bool:
    """True when the natural destination register class of ``op`` is FP.

    FP loads write a floating-point destination even though their address
    operands are integer registers, mirroring real RISC ISAs.
    """
    return op in _FP_DEST_OPS
