"""Logical (architectural) register model.

The paper's processor model (Table 2) uses the MIPS/Alpha-style split of
32 integer and 32 floating-point logical registers, renamed onto two
independent physical register files.  Register identity in this package is
the pair ``(RegClass, index)``; the :class:`LogicalRegister` named tuple is
a thin convenience wrapper used at API boundaries, while the hot simulator
paths work directly with ``(int(reg_class), index)`` tuples for speed.
"""

from __future__ import annotations

import enum
from typing import Iterator, NamedTuple

#: Number of architected integer registers (MIPS/Alpha ISA convention, and
#: the value L=32 used throughout the paper).
NUM_LOGICAL_INT = 32

#: Number of architected floating-point registers.
NUM_LOGICAL_FP = 32

#: Number of logical registers per class, indexed by :class:`RegClass` value.
NUM_LOGICAL = (NUM_LOGICAL_INT, NUM_LOGICAL_FP)


class RegClass(enum.IntEnum):
    """Register class: integer or floating point.

    The two classes are renamed onto *separate* physical register files,
    exactly as in the paper ("We consider only integer registers for
    integer programs and FP registers for FP programs", Section 2), so the
    class is part of every register identity.
    """

    INT = 0
    FP = 1

    @property
    def num_logical(self) -> int:
        """Number of architected registers in this class."""
        return NUM_LOGICAL[self]

    @property
    def short_name(self) -> str:
        """Two/three-letter label used in reports ("int" / "fp")."""
        return "int" if self is RegClass.INT else "fp"


class LogicalRegister(NamedTuple):
    """An architectural register: a ``(reg_class, index)`` pair.

    Instances compare equal to plain tuples with the same contents, which
    lets the simulator's hot paths use bare tuples without conversion.
    """

    reg_class: RegClass
    index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        prefix = "r" if self.reg_class is RegClass.INT else "f"
        return f"{prefix}{self.index}"

    @property
    def is_valid(self) -> bool:
        """True when the index is within the architected range of its class."""
        return 0 <= self.index < NUM_LOGICAL[self.reg_class]


def logical_registers(reg_class: RegClass) -> Iterator[LogicalRegister]:
    """Iterate over every architectural register of ``reg_class``.

    >>> len(list(logical_registers(RegClass.INT)))
    32
    """
    for index in range(NUM_LOGICAL[reg_class]):
        yield LogicalRegister(reg_class, index)
