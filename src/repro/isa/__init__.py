"""Instruction-set abstraction used by the trace generators and the simulator.

The paper evaluates on SPEC95 binaries compiled for Alpha and run under
SimpleScalar.  This reproduction is *trace driven*: the unit of work is a
:class:`~repro.isa.instructions.Instruction` record carrying exactly the
information the rename/issue/commit machinery needs — operation class,
logical source/destination registers, branch behaviour and memory address —
and nothing else (no values are computed; the simulator is timing-only).

The register model follows the paper's Section 2: two logical register
classes (integer and floating point) with 32 architectural registers each,
renamed onto two separate merged physical register files.
"""

from repro.isa.registers import (
    RegClass,
    NUM_LOGICAL_INT,
    NUM_LOGICAL_FP,
    NUM_LOGICAL,
    LogicalRegister,
    logical_registers,
)
from repro.isa.opcodes import (
    OpClass,
    FUKind,
    FU_KIND,
    DEFAULT_LATENCY,
    is_memory_op,
    is_branch_op,
    uses_fp_dest,
)
from repro.isa.instructions import Instruction, InstructionBuilder

__all__ = [
    "RegClass",
    "NUM_LOGICAL_INT",
    "NUM_LOGICAL_FP",
    "NUM_LOGICAL",
    "LogicalRegister",
    "logical_registers",
    "OpClass",
    "FUKind",
    "FU_KIND",
    "DEFAULT_LATENCY",
    "is_memory_op",
    "is_branch_op",
    "uses_fp_dest",
    "Instruction",
    "InstructionBuilder",
]
