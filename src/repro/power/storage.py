"""Storage-cost model of the early-release mechanisms (paper Section 4.4).

The paper sizes the extended mechanism for an Alpha-21264-like machine
(ROS size 80, 8-bit physical register identifiers, 152 physical registers,
20 pending branches) at "about 1.22 KBytes", plus "around 128 B" for the
integer and FP Last-Uses Tables.  The formulas below reproduce that
arithmetic and generalise it to any configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2


def _bits_for(n: int) -> int:
    """Number of bits needed to name ``n`` distinct values."""
    return max(1, ceil(log2(max(n, 2))))


def lus_table_storage_bits(num_logical: int = 32, ros_size: int = 128,
                           bits_per_entry: int | None = None,
                           num_tables: int = 2) -> int:
    """Storage of the Last-Uses Tables.

    Each entry holds the ROS identifier of the last-use instruction, a
    2-bit Kind field (src1/src2/dst) and the commit bit C.  The paper
    quotes "around 128 B" for the two tables of an Alpha-21264-like
    machine, which corresponds to 16 bits per entry; pass
    ``bits_per_entry`` to override the derived width.
    """
    if bits_per_entry is None:
        bits_per_entry = _bits_for(ros_size) + 2 + 1
    return num_tables * num_logical * bits_per_entry


def extended_mechanism_storage_bits(ros_size: int = 80,
                                    physical_id_bits: int = 8,
                                    num_physical: int = 152,
                                    max_pending_branches: int = 20) -> int:
    """Storage of the extended mechanism (Release Queue + per-ROS state).

    Components (paper Figure 7):

    * ``PRid`` — three physical register identifiers per ROS entry;
    * ``RwC0`` — three early-release bits per ROS entry;
    * ``RwCx`` — three bits per ROS entry per pending-branch level;
    * ``RwNSx`` — one bit per physical register per pending-branch level.

    With the paper's Alpha-21264 parameters this evaluates to 10 000 bits
    = 1250 bytes ≈ 1.22 KB, the figure quoted in Section 4.4.
    """
    prid = ros_size * 3 * physical_id_bits
    rwc0 = ros_size * 3
    rwcx = max_pending_branches * ros_size * 3
    rwnsx = max_pending_branches * num_physical
    return prid + rwc0 + rwcx + rwnsx


def basic_mechanism_storage_bits(ros_size: int = 80,
                                 physical_id_bits: int = 8,
                                 logical_id_bits: int = 5) -> int:
    """Storage added to the ROS by the *basic* mechanism (paper Figure 5).

    Per entry: three source/destination logical identifiers, three physical
    source identifiers (p1, p2 — pd and old_pd already exist in the
    conventional ROS), the three early-release bits and the rel_old bit.
    """
    per_entry = 3 * logical_id_bits + 2 * physical_id_bits + 3 + 1
    return ros_size * per_entry


@dataclass(frozen=True)
class StorageModel:
    """Storage accounting for one processor configuration."""

    ros_size: int = 80
    num_physical_int: int = 80
    num_physical_fp: int = 72
    max_pending_branches: int = 20
    num_logical: int = 32

    @property
    def physical_id_bits(self) -> int:
        """Bits needed to name any physical register (both files together).

        The paper sizes the identifier across the two files (152 registers
        → 8 bits for the Alpha-21264-like example).
        """
        return _bits_for(self.num_physical_int + self.num_physical_fp)

    @property
    def num_physical_total(self) -> int:
        """Total physical registers across the two files."""
        return self.num_physical_int + self.num_physical_fp

    def extended_mechanism_bytes(self) -> float:
        """Extended-mechanism storage in bytes (paper: ≈1.22 KB for the 21264)."""
        bits = extended_mechanism_storage_bits(
            ros_size=self.ros_size,
            physical_id_bits=self.physical_id_bits,
            num_physical=self.num_physical_total,
            max_pending_branches=self.max_pending_branches)
        return bits / 8.0

    def basic_mechanism_bytes(self) -> float:
        """Basic-mechanism ROS extension storage in bytes."""
        bits = basic_mechanism_storage_bits(
            ros_size=self.ros_size,
            physical_id_bits=self.physical_id_bits,
            logical_id_bits=_bits_for(self.num_logical))
        return bits / 8.0

    def lus_tables_bytes(self) -> float:
        """Storage of the two Last-Uses Tables in bytes (paper: ≈128 B).

        The paper's round figure corresponds to 16 bits per entry (the
        minimal encoding needs 10: a 7-bit ROS identifier, 2 Kind bits and
        the C bit); the padded width is used here so the reported number
        matches Section 4.4.
        """
        bits = lus_table_storage_bits(num_logical=self.num_logical,
                                      ros_size=self.ros_size,
                                      bits_per_entry=16)
        return bits / 8.0

    def total_extended_bytes(self) -> float:
        """Extended mechanism plus LUs Tables, in bytes."""
        return self.extended_mechanism_bytes() + self.lus_tables_bytes()
