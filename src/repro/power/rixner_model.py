"""Analytical register-file access-time and energy model (paper Figure 9).

The paper evaluates the hardware cost of the Last-Uses Table with the
register-file delay and power model of Rixner et al. ("Register
Organization for Media Processing", HPCA-6, 2000) for a 0.18 µm
technology.  The original model is a detailed circuit-level one; what the
paper uses from it are the *scaling trends*: access time grows roughly
with the word-line/bit-line length (∝ ports · sqrt(entries · word size)),
and energy per access grows with the switched capacitance
(∝ entries · word size · ports²).

This module reimplements those trends analytically and calibrates the
constants to the figures printed in the paper:

* the LUs Table (32 entries × 9 bits, 32 read + 24 write ports) has an
  access time of 0.98 ns and consumes 193.2 pJ per access;
* the LUs Table delay is 26 % lower than that of the smallest (40-entry)
  integer register file considered;
* the LUs Table energy is about 20 % of the least demanding register file;
* the 64-entry integer file plus the 79-entry FP file consume about
  3850 pJ (the Section 4.4 energy-neutrality argument).

With the functional forms below, calibrating to the first two anchor
points reproduces the remaining two within a few per cent, which is the
level of agreement the reproduction tests assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

#: Read + write ports of the integer register file of the evaluated 8-way
#: processor (paper Section 4.4: "Tint = 44").
INT_FILE_PORTS = 44

#: Read + write ports of the FP register file ("Tfp = 50").
FP_FILE_PORTS = 50

#: Effective extra entries accounting for decoders/precharge overhead.
_ENTRY_OVERHEAD = 8


@dataclass(frozen=True)
class RegisterFileGeometry:
    """Geometry of a multiported SRAM structure.

    Attributes
    ----------
    entries:
        Number of storage entries (physical registers, or table rows).
    word_bits:
        Width of each entry in bits.
    ports:
        Total number of read plus write ports.
    name:
        Label used in reports.
    """

    entries: int
    word_bits: int
    ports: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.word_bits <= 0 or self.ports <= 0:
            raise ValueError("geometry values must be positive")


#: Geometry of the Last-Uses Table for an 8-way processor (paper
#: Section 4.4: 32 entries, 9-bit word, 32 read + 24 write ports).
LUS_TABLE_GEOMETRY = RegisterFileGeometry(entries=32, word_bits=9, ports=56,
                                          name="LUs Table")

#: Calibration anchors printed in the paper.
_LUS_ACCESS_TIME_NS = 0.98
_LUS_ENERGY_PJ = 193.2
#: "the LUs Table delay ... is a 26% less than that of the smaller integer file"
_LUS_DELAY_REDUCTION_VS_SMALLEST_INT = 0.26
_SMALLEST_INT_FILE_ENTRIES = 40
_RF_WORD_BITS = 64


class RixnerModel:
    """Access-time and energy model for multiported register files.

    The model is calibrated at construction from the paper's LUs Table
    anchor point and the published delay relation between the LUs Table
    and the smallest integer file; all other values follow from the
    scaling laws.
    """

    def __init__(self) -> None:
        lus = LUS_TABLE_GEOMETRY
        lus_geom_delay = lus.ports * math.sqrt(
            (lus.entries + _ENTRY_OVERHEAD) * lus.word_bits)
        smallest_int_geom_delay = INT_FILE_PORTS * math.sqrt(
            (_SMALLEST_INT_FILE_ENTRIES + _ENTRY_OVERHEAD) * _RF_WORD_BITS)
        smallest_int_delay = _LUS_ACCESS_TIME_NS / (
            1.0 - _LUS_DELAY_REDUCTION_VS_SMALLEST_INT)
        #: ns per (port · sqrt(bit)) unit of word/bit-line length.
        self._t1 = (smallest_int_delay - _LUS_ACCESS_TIME_NS) / (
            smallest_int_geom_delay - lus_geom_delay)
        #: fixed (decode + sense) delay in ns.
        self._t0 = _LUS_ACCESS_TIME_NS - self._t1 * lus_geom_delay
        #: pJ per (entry · bit · port²) unit of switched capacitance.
        self._e1 = _LUS_ENERGY_PJ / (
            (lus.entries + _ENTRY_OVERHEAD) * lus.word_bits * lus.ports ** 2)

    # ------------------------------------------------------------------
    def access_time_ns(self, geometry: RegisterFileGeometry) -> float:
        """Access time of ``geometry`` in nanoseconds (0.18 µm technology)."""
        length = geometry.ports * math.sqrt(
            (geometry.entries + _ENTRY_OVERHEAD) * geometry.word_bits)
        return self._t0 + self._t1 * length

    def energy_pj(self, geometry: RegisterFileGeometry) -> float:
        """Energy per access of ``geometry`` in picojoules."""
        capacitance = ((geometry.entries + _ENTRY_OVERHEAD) * geometry.word_bits
                       * geometry.ports ** 2)
        return self._e1 * capacitance

    # ------------------------------------------------------------------
    # Convenience constructors for the structures of the evaluated processor.
    # ------------------------------------------------------------------
    @staticmethod
    def int_register_file(num_registers: int) -> RegisterFileGeometry:
        """Integer register file geometry (64-bit words, Tint = 44 ports)."""
        return RegisterFileGeometry(entries=num_registers, word_bits=_RF_WORD_BITS,
                                    ports=INT_FILE_PORTS,
                                    name=f"INT RF ({num_registers})")

    @staticmethod
    def fp_register_file(num_registers: int) -> RegisterFileGeometry:
        """FP register file geometry (64-bit words, Tfp = 50 ports)."""
        return RegisterFileGeometry(entries=num_registers, word_bits=_RF_WORD_BITS,
                                    ports=FP_FILE_PORTS,
                                    name=f"FP RF ({num_registers})")

    # ------------------------------------------------------------------
    def figure9_curves(self, sizes: Iterable[int] = range(40, 161, 8),
                       ) -> Dict[str, List[Tuple[int, float, float]]]:
        """Regenerate the two panels of Figure 9.

        Returns, for each series ("INT", "FP", "LUsT"), a list of
        ``(register count, access time ns, energy pJ)`` tuples; the LUs
        Table series is flat (its size does not depend on the register
        file size), exactly as in the figure.
        """
        sizes = list(sizes)
        curves: Dict[str, List[Tuple[int, float, float]]] = {"INT": [], "FP": [],
                                                             "LUsT": []}
        for size in sizes:
            int_geom = self.int_register_file(size)
            fp_geom = self.fp_register_file(size)
            curves["INT"].append((size, self.access_time_ns(int_geom),
                                  self.energy_pj(int_geom)))
            curves["FP"].append((size, self.access_time_ns(fp_geom),
                                 self.energy_pj(fp_geom)))
            curves["LUsT"].append((size, self.access_time_ns(LUS_TABLE_GEOMETRY),
                                   self.energy_pj(LUS_TABLE_GEOMETRY)))
        return curves

    def configuration_energy_pj(self, num_int: int, num_fp: int,
                                include_lus_tables: bool = False) -> float:
        """Total per-access energy of an (int, fp) register file configuration.

        With ``include_lus_tables`` the two Last-Uses Tables of an
        early-release design are added — the Section 4.4 comparison
        E(64int + 79fp) vs E(56int + 72fp + 2 LUs Tables).
        """
        total = (self.energy_pj(self.int_register_file(num_int))
                 + self.energy_pj(self.fp_register_file(num_fp)))
        if include_lus_tables:
            total += 2 * self.energy_pj(LUS_TABLE_GEOMETRY)
        return total
