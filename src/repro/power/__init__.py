"""Register-file delay/energy and storage-cost models.

Section 4.4 of the paper uses the register-file access-time and energy
model of Rixner et al. (HPCA-6, 2000) for a 0.18 µm technology to show
that the Last-Uses Table is far off the critical path (Figure 9) and that
early release is energy neutral, and a simple storage model to show that
the extended mechanism costs about 1.22 KB of state on an Alpha-21264-like
machine.  :mod:`repro.power.rixner_model` and :mod:`repro.power.storage`
reimplement both models analytically.
"""

from repro.power.rixner_model import (
    RegisterFileGeometry,
    RixnerModel,
    LUS_TABLE_GEOMETRY,
    INT_FILE_PORTS,
    FP_FILE_PORTS,
)
from repro.power.storage import (
    StorageModel,
    extended_mechanism_storage_bits,
    lus_table_storage_bits,
)

__all__ = [
    "RegisterFileGeometry",
    "RixnerModel",
    "LUS_TABLE_GEOMETRY",
    "INT_FILE_PORTS",
    "FP_FILE_PORTS",
    "StorageModel",
    "extended_mechanism_storage_bits",
    "lus_table_storage_bits",
]
