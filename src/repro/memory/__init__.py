"""Memory hierarchy models (Table 2 of the paper).

* L1 instruction cache: 32 KB, 2-way, 32-byte lines, 1-cycle hit.
* L1 data cache: 32 KB, 2-way, 64-byte lines, 1-cycle hit.
* Unified L2: 1 MB, 2-way, 64-byte lines, 12-cycle hit.
* Main memory: unbounded, 50-cycle access.

The caches are timing-only (no data storage) set-associative LRU caches.
"""

from repro.memory.cache import Cache, CacheConfig, AccessResult
from repro.memory.hierarchy import MemoryHierarchy, MemoryConfig

__all__ = [
    "Cache",
    "CacheConfig",
    "AccessResult",
    "MemoryHierarchy",
    "MemoryConfig",
]
