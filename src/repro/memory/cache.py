"""Timing-only set-associative cache with LRU replacement.

The cache stores tags only (no data — the simulator never computes
values).  Writes are modelled as write-back / write-allocate, the
SimpleScalar default the paper's configuration inherits; dirty evictions
are counted but add no extra latency (the write-back buffer is assumed to
hide them, again following sim-outorder).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int
    hit_latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size must be a multiple of associativity * line size")
        if self.hit_latency < 1:
            raise ValueError("hit latency must be at least one cycle")

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a cache access."""

    hit: bool
    latency: int
    evicted_dirty: bool = False


class Cache:
    """One level of a (timing-only) set-associative LRU cache."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._n_sets = config.n_sets
        self._line_shift = config.line_bytes.bit_length() - 1
        # Each set: list of [tag, dirty] in LRU order (index 0 = MRU).
        self._sets: List[List[List[int]]] = [[] for _ in range(self._n_sets)]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    # ------------------------------------------------------------------
    def _locate(self, address: int) -> Tuple[int, int]:
        line = address >> self._line_shift
        return line % self._n_sets, line

    def probe(self, address: int) -> bool:
        """Return True when ``address`` is resident, without updating LRU or stats."""
        index, tag = self._locate(address)
        return any(entry[0] == tag for entry in self._sets[index])

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Access ``address``; allocate the line on a miss (write-allocate).

        Returns the hit/miss outcome with the *local* latency of this level
        (the hierarchy composes levels into full miss latencies).
        """
        index, tag = self._locate(address)
        ways = self._sets[index]
        for pos, entry in enumerate(ways):
            if entry[0] == tag:
                ways.insert(0, ways.pop(pos))
                if is_write:
                    entry[1] = 1
                self.hits += 1
                return AccessResult(hit=True, latency=self.config.hit_latency)
        self.misses += 1
        evicted_dirty = False
        ways.insert(0, [tag, 1 if is_write else 0])
        if len(ways) > self.config.associativity:
            victim = ways.pop()
            if victim[1]:
                evicted_dirty = True
                self.writebacks += 1
        return AccessResult(hit=False, latency=self.config.hit_latency,
                            evicted_dirty=evicted_dirty)

    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        """Total number of accesses observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss fraction (0.0 if the cache has not been accessed)."""
        return 0.0 if self.accesses == 0 else self.misses / self.accesses

    def flush(self) -> None:
        """Invalidate all lines (statistics are preserved)."""
        self._sets = [[] for _ in range(self._n_sets)]

    def reset_statistics(self) -> None:
        """Zero the hit/miss/writeback counters (contents are preserved).

        Used after the warm-up pass so reported miss rates reflect the
        measured run only.
        """
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
