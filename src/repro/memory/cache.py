"""Timing-only set-associative cache with LRU replacement.

The cache stores tags only (no data — the simulator never computes
values).  Writes are modelled as write-back / write-allocate, the
SimpleScalar default the paper's configuration inherits; dirty evictions
are counted but add no extra latency (the write-back buffer is assumed to
hide them, again following sim-outorder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int
    hit_latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size must be a multiple of associativity * line size")
        if self.hit_latency < 1:
            raise ValueError("hit latency must be at least one cycle")

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a cache access."""

    hit: bool
    latency: int
    evicted_dirty: bool = False


class Cache:
    """One level of a (timing-only) set-associative LRU cache."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._n_sets = config.n_sets
        self._line_shift = config.line_bytes.bit_length() - 1
        # Each set: list of [tag, dirty] in LRU order (index 0 = MRU).
        # Sets are materialised lazily (dict keyed by set index): a large
        # L2 touches a fraction of its sets in a scaled-down run, and
        # every simulated machine builds three caches at construction.
        self._sets: Dict[int, List[List[int]]] = {}
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    # ------------------------------------------------------------------
    def _locate(self, address: int) -> Tuple[int, int]:
        line = address >> self._line_shift
        return line % self._n_sets, line

    def probe(self, address: int) -> bool:
        """Return True when ``address`` is resident, without updating LRU or stats."""
        index, tag = self._locate(address)
        ways = self._sets.get(index)
        return ways is not None and any(entry[0] == tag for entry in ways)

    def access_hit(self, address: int, is_write: bool = False) -> bool:
        """Access ``address``; allocate the line on a miss (write-allocate).

        Object-free hot path shared with :meth:`access`: returns only the
        hit/miss outcome and updates LRU order, dirty bits and the
        counters.  The per-level latency is a config constant the caller
        composes itself (see :class:`repro.memory.hierarchy.MemoryHierarchy`).
        """
        line = address >> self._line_shift
        tag = line
        sets = self._sets
        index = line % self._n_sets
        ways = sets.get(index)
        if ways is None:
            ways = sets[index] = []
        for pos, entry in enumerate(ways):
            if entry[0] == tag:
                if pos:
                    ways.insert(0, ways.pop(pos))
                if is_write:
                    entry[1] = 1
                self.hits += 1
                return True
        self.misses += 1
        ways.insert(0, [tag, 1 if is_write else 0])
        if len(ways) > self.config.associativity:
            if ways.pop()[1]:
                self.writebacks += 1
        return False

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Access ``address``; allocate the line on a miss (write-allocate).

        Returns the hit/miss outcome with the *local* latency of this level
        (the hierarchy composes levels into full miss latencies).  Thin
        wrapper over :meth:`access_hit` — the replacement policy lives in
        one place.
        """
        writebacks_before = self.writebacks
        hit = self.access_hit(address, is_write)
        return AccessResult(hit=hit, latency=self.config.hit_latency,
                            evicted_dirty=self.writebacks > writebacks_before)

    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        """Total number of accesses observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss fraction (0.0 if the cache has not been accessed)."""
        return 0.0 if self.accesses == 0 else self.misses / self.accesses

    def flush(self) -> None:
        """Invalidate all lines (statistics are preserved)."""
        self._sets.clear()

    def reset_statistics(self) -> None:
        """Zero the hit/miss/writeback counters (contents are preserved).

        Used after the warm-up pass so reported miss rates reflect the
        measured run only.
        """
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
