"""Two-level cache hierarchy plus main memory (Table 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.cache import Cache, CacheConfig


@dataclass(frozen=True)
class MemoryConfig:
    """Geometry/latency of the whole memory system (defaults = paper Table 2)."""

    l1i: CacheConfig = CacheConfig("L1I", size_bytes=32 * 1024, associativity=2,
                                   line_bytes=32, hit_latency=1)
    l1d: CacheConfig = CacheConfig("L1D", size_bytes=32 * 1024, associativity=2,
                                   line_bytes=64, hit_latency=1)
    l2: CacheConfig = CacheConfig("L2", size_bytes=1024 * 1024, associativity=2,
                                  line_bytes=64, hit_latency=12)
    main_memory_latency: int = 50


class MemoryHierarchy:
    """L1I + L1D backed by a unified L2 and flat-latency main memory.

    The hierarchy returns the *total* access latency seen by the requester:
    L1 hit latency on a hit, plus the L2 hit latency on an L1 miss, plus
    the main-memory latency on an L2 miss.  No bandwidth contention or
    MSHR limits are modelled (SimpleScalar's default configuration, which
    the paper uses, services misses without port contention as well).
    """

    def __init__(self, config: Optional[MemoryConfig] = None) -> None:
        self.config = config or MemoryConfig()
        self.l1i = Cache(self.config.l1i)
        self.l1d = Cache(self.config.l1d)
        self.l2 = Cache(self.config.l2)
        self.memory_accesses = 0
        # Latency constants hoisted out of the per-access path.
        self._l1i_latency = self.config.l1i.hit_latency
        self._l1d_latency = self.config.l1d.hit_latency
        self._l2_latency = self.config.l2.hit_latency
        self._memory_latency = self.config.main_memory_latency

    # ------------------------------------------------------------------
    def _access(self, l1: Cache, l1_latency: int, address: int,
                is_write: bool) -> int:
        if l1.access_hit(address, is_write):
            return l1_latency
        latency = l1_latency + self._l2_latency
        if not self.l2.access_hit(address, False):
            self.memory_accesses += 1
            latency += self._memory_latency
        return latency

    def instruction_access(self, pc: int) -> int:
        """Fetch access: total latency in cycles for the line holding ``pc``."""
        return self._access(self.l1i, self._l1i_latency, pc, is_write=False)

    def data_read(self, address: int) -> int:
        """Load access: total latency in cycles."""
        return self._access(self.l1d, self._l1d_latency, address, is_write=False)

    def data_write(self, address: int) -> int:
        """Store access (performed at commit): total latency in cycles.

        The returned latency is informational; stores retire into the
        write buffer and do not stall commit.
        """
        return self._access(self.l1d, self._l1d_latency, address, is_write=True)

    def reset_statistics(self) -> None:
        """Zero hit/miss counters of every level (contents are preserved)."""
        self.l1i.reset_statistics()
        self.l1d.reset_statistics()
        self.l2.reset_statistics()
        self.memory_accesses = 0
