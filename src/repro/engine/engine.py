"""The simulation engine: stages wired to a shared state and a clock.

:class:`SimulationEngine` owns one :class:`~repro.engine.state.MachineState`,
sweeps the five stages over it (commit → writeback → issue → rename →
fetch, reverse pipeline order) and lets its clock fast-forward across
quiescent gaps.  :func:`simulate` is the one-call entry point; the legacy
:class:`repro.pipeline.processor.Processor` facade delegates here.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from repro.engine.clock import CycleClock, EventClock
from repro.engine.stages import Stage, default_stages
from repro.engine.state import MachineState
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.stats import SimStats
from repro.trace.records import Trace


class DeadlockError(RuntimeError):
    """Raised when the pipeline makes no forward progress for many cycles."""


class SimulationEngine:
    """Drives one machine to completion through composable pipeline stages."""

    def __init__(self, trace: Trace, config: Optional[ProcessorConfig] = None,
                 clock: Union[None, CycleClock, EventClock] = None,
                 stages: Optional[List[Stage]] = None,
                 probe: Optional[Callable[[MachineState], None]] = None) -> None:
        self.state = MachineState(trace, config)
        self.stages = stages if stages is not None else default_stages()
        #: bound tick methods, hoisted out of the per-cycle sweep.
        self._ticks = [stage.tick for stage in self.stages]
        #: the event-driven clock is the default; pass :class:`CycleClock`
        #: to force classic per-cycle stepping (reference/debugging mode).
        self.clock = clock if clock is not None else EventClock()
        #: introspection hook: called with the :class:`MachineState` after
        #: every *executed* cycle (the differential fuzzer's invariant
        #: probes attach here).  A probe observes Python-engine state, so
        #: setting one pins the run to the Python engine — the compiled
        #: core has no per-cycle state to expose.  Combine with a
        #: :class:`CycleClock` to observe literally every cycle (the
        #: event-driven clock fast-forwards across quiescent gaps).
        self.probe = probe
        #: backend that produced the last :meth:`run` result ("python"
        #: until a run completes on the compiled core).
        self.backend_used = "python"
        #: ready-set peak reported by the compiled core (the Python
        #: engine exposes it as ``state.ready.peak_size`` instead).
        self.compiled_ready_peak: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True when every fetched instruction has drained from the pipeline."""
        return self.state.finished

    @property
    def stats(self) -> SimStats:
        """The (live) statistics of the run."""
        return self.state.stats

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Simulate exactly one cycle (commit → writeback → issue → rename → fetch).

        ``step`` never fast-forwards: single-stepping callers observe every
        cycle.  The clock only jumps inside :meth:`run`.
        """
        state = self.state
        state.ensure_warm()
        for tick in self._ticks:
            tick(state)
        state.cycle += 1
        if self.probe is not None:
            self.probe(state)

    def run(self, max_instructions: Optional[int] = None,
            max_cycles: Optional[int] = None,
            deadlock_threshold: int = 50_000) -> SimStats:
        """Run the simulation until the trace drains (or a limit is hit)."""
        state = self.state
        if state.cycle == 0 and state.seq == 0 and self.probe is None:
            # Backend dispatch happens only for whole runs from reset
            # (a partially stepped machine cannot be exported) and only
            # when no probe is attached (probes observe Python-engine
            # state the compiled core does not materialise).
            from repro.engine import accel

            if accel.resolve_engine_backend(state.config) == "compiled":
                result = accel.run_compiled(
                    state, max_instructions=max_instructions,
                    max_cycles=max_cycles,
                    deadlock_threshold=deadlock_threshold)
                if result is not None:
                    self.backend_used = "compiled"
                    self.compiled_ready_peak = result.ready_peak
                    return result.stats
        self.backend_used = "python"
        state.ensure_warm()     # warm-up deferred to a backend we didn't use
        clock = self.clock
        advance = clock.advance
        ticks = self._ticks
        probe = self.probe
        stats = state.stats
        fetch_unit = state.fetch_unit
        decode_queue = state.decode_queue
        ros = state.ros
        limit = max_instructions if max_instructions is not None else len(state.trace)
        while True:
            advance(state, max_cycles=max_cycles)
            if max_cycles is not None and state.cycle >= max_cycles:
                break
            for tick in ticks:          # one cycle: commit → … → fetch
                tick(state)
            state.cycle += 1
            if probe is not None:
                probe(state)
            if stats.committed_instructions >= limit:
                break
            # state.finished, with the property chain flattened.
            if ros._count == 0 and not decode_queue and fetch_unit.trace_exhausted:
                break
            if max_cycles is not None and state.cycle >= max_cycles:
                break
            if state.cycle - state.last_commit_cycle > deadlock_threshold:
                raise DeadlockError(
                    f"no instruction committed for {deadlock_threshold} cycles "
                    f"(cycle={state.cycle}, ROS={len(state.ros)}, "
                    f"head={state.ros.head()!r})")
        return state.collect_stats()


def simulate(trace: Trace, config: Optional[ProcessorConfig] = None,
             max_instructions: Optional[int] = None,
             max_cycles: Optional[int] = None,
             clock: Union[None, CycleClock, EventClock] = None) -> SimStats:
    """Build a :class:`SimulationEngine` for ``trace`` and run it to completion.

    This is the main public entry point: every experiment and example uses
    it.  ``max_instructions`` limits the number of *committed* instructions
    (defaults to the trace length); ``max_cycles`` is a safety bound;
    ``clock`` selects the stepping strategy (event-driven by default).
    """
    engine = SimulationEngine(trace, config, clock=clock)
    return engine.run(max_instructions=max_instructions, max_cycles=max_cycles)
