"""The five pipeline stages as composable objects.

Each stage is stateless: :meth:`Stage.tick` reads and mutates one
:class:`repro.engine.state.MachineState`.  The engine runs them each cycle
in reverse pipeline order so same-cycle producer/consumer interactions
behave like a real machine:

1. :class:`CommitStage`    — retire up to ``commit_width`` completed head
   entries, update the in-order map table, drive the release policy's
   commit hooks, take exceptions;
2. :class:`WritebackStage` — finish instructions whose execution latency
   expires this cycle (drained from the indexed completion queue), wake
   exactly the consumers whose last producer completed, resolve branches
   (confirm or recover);
3. :class:`IssueStage`     — pop up to ``issue_width`` instructions from
   the age-ordered ready set, subject to functional-unit availability;
   the dependency and memory-ordering rules were already enforced when
   the entries became ready (see
   :meth:`repro.engine.state.MachineState.make_issue_ready`);
4. :class:`RenameStage`    — rename/dispatch up to ``rename_width``
   decoded instructions, allocating physical registers, ROS/LSQ entries
   and branch checkpoints, and invoking the release policy's rename hooks
   (this is where early releases are scheduled and where register-shortage
   stalls happen);
5. :class:`FetchStage`     — fetch up to ``fetch_width`` instructions from
   the trace (or the wrong-path generator) into the front-end pipe.

The module also exposes the side-effect-free probes the event-driven clock
needs (:func:`dispatch_hazard`, :func:`may_avoid_allocation`): fast-forward
decisions must inspect rename hazards without mutating stall counters.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.backend.ros import ROSEntry
from repro.engine.state import (
    STALL_CHECKPOINTS_FULL,
    STALL_LSQ_FULL,
    STALL_NO_FREE_FP,
    STALL_NO_FREE_INT,
    STALL_ROS_FULL,
    MachineState,
)
from repro.frontend.fetch import FetchedOp
from repro.isa import Instruction, OpClass, RegClass
from repro.rename.checkpoints import Checkpoint


class Stage(abc.ABC):
    """One pipeline stage; processes a single cycle of one machine."""

    #: short stage name (progress displays, tests).
    name: str = "stage"

    @abc.abstractmethod
    def tick(self, state: MachineState) -> None:
        """Process the current cycle of ``state``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


# ======================================================================
# Rename hazard probes (shared by the rename stage and the event clock)
# ======================================================================
def may_avoid_allocation(state: MachineState, dest_class: RegClass,
                         logical: int,
                         inst: Optional[Instruction] = None) -> bool:
    """Side-effect-free probe: could rename proceed without a free register?

    True when the release policy would either reuse the previous
    version or release it immediately (committed LU, no pending
    branches), so a stalled free list does not have to stall rename.

    When ``inst`` is given, an instruction that *reads its own
    destination register* (e.g. ``LOAD r11 <- [r11]``) is never treated
    as avoidable: recording its source uses at rename makes the
    instruction itself the last use of the previous version, so the
    policy cannot reuse or immediately release it and a fresh register
    must be allocated.  Probing the LUs table without this test would
    look at pre-rename state and wrongly wave the instruction through a
    dry free list (the seed-era ``allocate() on an empty free list``
    crash).
    """
    policy = state.policies[dest_class]
    lus_table = getattr(policy, "lus_table", None)
    if lus_table is None:
        return False
    if state.map_tables[dest_class].is_stale(logical):
        return False
    if inst is not None and any(reg_class is dest_class and source == logical
                                for reg_class, source in inst.srcs):
        return False
    lu = lus_table.lookup(logical)
    if lu is None:
        # Unknown LU: basic falls back to conventional, extended treats it
        # as committed; only the extended policy can proceed.
        return policy.name == "extended" and state.count_pending_branches() == 0
    if state.has_pending_branch_younger_than(lu.seq):
        return False
    if not state.is_committed(lu.seq):
        return False
    if policy.name == "extended" and state.count_pending_branches() > 0:
        return False
    return True


def dispatch_hazard(state: MachineState, inst: Instruction) -> Optional[str]:
    """Stall reason that would block renaming ``inst`` this cycle, or None.

    Pure probe: checks are made in the same order the rename stage applies
    them, with no counter updates, so the event-driven clock can account
    for skipped stall cycles exactly.
    """
    ros = state.ros
    if ros._count >= ros.capacity:
        return STALL_ROS_FULL
    if inst.is_mem and state.lsq.is_full:
        return STALL_LSQ_FULL
    if inst.is_branch and state.checkpoints.is_full:
        return STALL_CHECKPOINTS_FULL
    dest = inst.dest
    if dest is not None:
        dest_class = dest[0]
        if not state.free_deques[dest_class] and \
                not may_avoid_allocation(state, dest_class, dest[1], inst):
            return (STALL_NO_FREE_INT if dest_class is RegClass.INT
                    else STALL_NO_FREE_FP)
    return None


# ======================================================================
# Stage 1: commit
# ======================================================================
class CommitStage(Stage):
    """In-order retirement of completed ROS head entries.

    The retire set is computed *batched*: one vectorised slice over the
    columnar ROS yields the contiguous completed prefix (capped at
    ``commit_width``), a second finds the first excepting entry inside
    it, and the width-wide bookkeeping — instruction count, commit
    watermark, last-commit cycle — is accumulated in bulk.  Only the
    per-entry effects that are inherently serial (release-policy hooks,
    IOMT updates, occupancy accounting, LSQ removal) walk the retired
    handles.
    """

    name = "commit"

    def tick(self, state: MachineState) -> None:
        ros = state.ros
        retire = ros.completed_prefix(state.config.commit_width)
        if not retire:
            return
        # An exception truncates the batch: the excepting entry commits
        # and then flushes the pipeline, so nothing younger retires.
        excepting_at = ros.exception_in_prefix(retire)
        if excepting_at >= 0:
            retire = excepting_at + 1
        cycle = state.cycle
        stats = state.stats
        by_class = stats.committed_by_class
        policies = state.policy_list
        last_use_lists = state.last_use_lists
        iomt_lists = state.iomt_lists
        lsq = state.lsq
        memory = state.memory
        entry = None
        for entry in ros.retire_prefix(retire):
            op_name = entry.inst.op_name
            by_class[op_name] = by_class.get(op_name, 0) + 1

            # Architectural (in-order) map table update.  The watermark
            # must advance entry by entry: the release-policy hooks below
            # consult it for *this* instruction's LU committed tests.
            state.committed_watermark = entry.seq
            dest_class = entry.dest_class
            if dest_class is not None:
                iomt_lists[dest_class][entry.dest_logical] = entry.pd
            # Release-policy commit hooks (both register classes see every entry).
            for policy in policies:
                policy.on_commit(entry, cycle)

            # Occupancy accounting: this commit is (potentially) the last use
            # of each source register, and of the destination if never read.
            for reg_class, _logical, physical in entry.src_regs:
                last_use_lists[reg_class][physical] = cycle
            if dest_class is not None:
                last_use_lists[dest_class][entry.pd] = cycle

            # Memory operations leave the LSQ at commit; stores write the cache.
            inst = entry.inst
            if inst.is_mem:
                if inst.is_store:
                    memory.data_write(inst.mem_addr)
                lsq.remove(entry.seq)

        stats.committed_instructions += retire
        state.last_commit_cycle = cycle
        if excepting_at >= 0:
            stats.exceptions_taken += 1
            state.exception_flush(entry)


# ======================================================================
# Stage 2: writeback / branch resolution
# ======================================================================
class WritebackStage(Stage):
    """Completion-event drain: wakeups, load completion, branch resolution."""

    name = "writeback"

    def tick(self, state: MachineState) -> None:
        entries = state.completions.pop_due(state.cycle)
        if not entries:
            return
        cycle = state.cycle
        ros = state.ros
        register_files = state.register_files
        consumers = state.consumers
        for seq, entry in entries:
            # Liveness is re-tested per entry: a branch resolved earlier
            # in this very bucket may have squashed (and recycled) this
            # one in the meantime.
            if entry.seq != seq or entry.squashed:
                continue
            ros.note_completed(entry, cycle)
            if entry.dest_class is not None:
                register_files[entry.dest_class].mark_written(entry.pd, cycle)
            # Wake the consumers for which this was the last outstanding
            # producer: they become issue-ready right now.
            for consumer in consumers.wake(entry.seq):
                if not consumer.issued:
                    state.make_issue_ready(consumer)
            inst = entry.inst
            if inst.is_load:
                state.lsq.mark_done(entry.seq)
            if inst.is_branch:
                self._resolve_branch(state, entry)

    # ------------------------------------------------------------------
    def _resolve_branch(self, state: MachineState, entry: ROSEntry) -> None:
        entry.branch_resolved = True
        taken = entry.inst.taken
        if entry.prediction is not None:
            state.predictor.resolve(entry.prediction, taken)
        if taken:
            state.btb.update(entry.inst.pc, entry.inst.target)
        if not entry.wrong_path:
            state.stats.branches_resolved += 1

        if entry.fetch_mispredicted:
            state.stats.branch_mispredictions += 1
            state.recover_from_misprediction(entry)
        else:
            state.checkpoints.confirm(entry.seq)
            for policy in state.policies.values():
                policy.on_branch_confirmed(entry.seq)


# ======================================================================
# Stage 3: issue / execute
# ======================================================================
class IssueStage(Stage):
    """Out-of-order selection from the age-ordered ready set.

    The per-cycle work is proportional to the instructions actually
    considered (issued plus structurally stalled), not to the ROS
    occupancy: entries waiting on producers or on older store addresses
    are not in the ready set at all.  A store issuing here drains its LSQ
    wait list, so a younger parked load can still issue *in the same
    cycle* — it re-enters the ready set with a higher sequence number
    than the store being processed and is popped later in this tick,
    exactly where the old oldest-first ROS scan would have met it.
    """

    name = "issue"

    def tick(self, state: MachineState) -> None:
        ready = state.ready
        if not ready:
            return
        issued = 0
        blocked: Optional[list] = None
        fus = state.fus
        cycle = state.cycle
        while issued < state.config.issue_width and ready:
            entry = ready.pop()
            inst = entry.inst
            latency = fus.try_issue(inst.op, cycle)
            if latency is None:
                # Still ready next cycle; re-armed below so the pop order
                # (and the stall accounting) matches the old full scan.
                fus.note_structural_stall()
                if blocked is None:
                    blocked = []
                blocked.append(entry)
                continue
            entry.issued = True
            entry.issue_cycle = cycle
            issued += 1

            if inst.is_mem:
                for load in state.lsq.mark_address_known(entry.seq):
                    state.make_issue_ready(load)
            if inst.is_load:
                if state.lsq.store_forwards_to(entry.seq, inst.mem_addr):
                    mem_latency = 1
                else:
                    mem_latency = state.memory.data_read(inst.mem_addr)
                entry.mem_latency = mem_latency
                complete_at = cycle + latency + mem_latency
            else:
                complete_at = cycle + latency
            state.completions.schedule(complete_at, entry)
        if blocked:
            for entry in blocked:
                ready.add(entry)


# ======================================================================
# Stage 4: rename / dispatch
# ======================================================================
class RenameStage(Stage):
    """In-order rename and dispatch of decoded instructions."""

    name = "rename"

    def tick(self, state: MachineState) -> None:
        decode_queue = state.decode_queue
        if not decode_queue:
            return
        renamed = 0
        width = state.config.rename_width
        cycle = state.cycle
        rename_one = self._rename_one
        while renamed < width and decode_queue:
            ready_cycle, op = decode_queue[0]
            if ready_cycle > cycle:
                break
            # Hazard probe up front: while register- or capacity-stalled
            # (every cycle, at tight configurations) the stage pays one
            # probe and one counter bump, nothing more.
            hazard = dispatch_hazard(state, op.inst)
            if hazard is not None:
                state.stats.dispatch_stalls[hazard] += 1
                break
            rename_one(state, op)
            decode_queue.popleft()
            renamed += 1

    # ------------------------------------------------------------------
    def _rename_one(self, state: MachineState, op: FetchedOp) -> None:
        """Rename a single instruction (the caller has cleared the hazards)."""
        inst = op.inst

        # Obtain (and recycle) the next ROS row; the entry stays
        # unpublished — invisible to `find` and the window probes — until
        # the push below, so the policy hooks observe the same pre-insert
        # window the per-entry implementation exposed.
        entry = state.ros.begin_rename(state.seq, inst)
        state.seq += 1
        entry.rename_cycle = state.cycle
        entry.resume_cursor = op.resume_cursor
        entry.prediction = op.prediction
        entry.predicted_taken = op.predicted_taken
        entry.fetch_mispredicted = op.mispredicted

        # ------------------------------------------------------- sources
        map_tables = state.map_tables
        policies = state.policies
        srcs = inst.srcs
        if srcs:
            map_lists = state.map_lists
            producer_lists = state.producer_lists
            source_use_hooks = state.source_use_hooks
            src_regs = entry.src_regs
            is_store = inst.is_store
            wait_producers = entry.wait_producers
            consumers = state.consumers
            for slot, (reg_class, logical) in enumerate(srcs):
                physical = map_lists[reg_class][logical]
                src_regs.append((reg_class, logical, physical))
                # Stores wait only for their *address* operands before
                # issuing (slot 0 is the value by trace convention): the
                # paper's rule is that loads wait for prior store
                # addresses, and the data is needed no earlier than
                # commit, which in-order retirement of the older producer
                # already guarantees.
                if not is_store or slot != 0:
                    producer = producer_lists[reg_class][physical]
                    if producer is not None:
                        wait_producers.add(producer)
                        consumers.register(producer, entry)
                hook = source_use_hooks[reg_class]
                if hook is not None:
                    hook(entry, slot, logical, physical)

        # ------------------------------------------------------- destination
        if inst.dest is not None:
            dest_class, dest_logical = inst.dest
            policy = policies[dest_class]
            register_file = state.register_files[dest_class]
            old_pd = state.map_lists[dest_class][dest_logical]
            outcome = policy.rename_destination(entry, dest_logical, old_pd)
            if outcome.reuse_previous:
                pd = old_pd
                entry.allocated_new = False
                entry.reused = True
                register_file.set_producer(pd, entry.seq)
            else:
                pd = register_file.allocate(state.cycle, entry.seq)
                map_tables[dest_class].set_mapping(dest_logical, pd)
                entry.allocated_new = True
            entry.dest_class = dest_class
            entry.dest_logical = dest_logical
            entry.pd = pd
            entry.old_pd = old_pd
            entry.rel_old = outcome.release_previous_at_commit
            hook = state.dest_def_hooks[dest_class]
            if hook is not None:
                hook(entry, dest_logical)

        # ------------------------------------------------------- branches
        if inst.is_branch:
            checkpoint = Checkpoint(
                branch_seq=entry.seq,
                map_snapshots={rc: mt.snapshot()
                               for rc, mt in map_tables.items()},
                policy_snapshots={rc: p.snapshot_state()
                                  for rc, p in policies.items()},
            )
            state.checkpoints.push(checkpoint)
            for policy in state.policy_list:
                policy.on_branch_renamed(entry)

        # ------------------------------------------------------- memory ops
        if inst.is_mem:
            state.lsq.insert(entry.seq, inst.is_store, inst.mem_addr)

        # ------------------------------------------------------- exceptions
        if (state.exception_enabled and not entry.wrong_path
                and state.exception_rng.random() < state.config.exception_rate):
            entry.exception = True

        state.ros.push(entry)
        state.stats.renamed_instructions += 1

        # Instructions with no execution dependencies and no FU requirement
        # (NOPs) complete immediately at the next writeback; everything
        # else either enters the ready set now or waits on its producers'
        # wakeup lists.
        if inst.op is OpClass.NOP:
            state.completions.schedule(state.cycle + 1, entry)
            entry.issued = True
        elif not entry.wait_producers:
            state.make_issue_ready(entry)


# ======================================================================
# Stage 5: fetch
# ======================================================================
class FetchStage(Stage):
    """Trace-driven fetch into the bounded front-end pipe."""

    name = "fetch"

    def tick(self, state: MachineState) -> None:
        if len(state.decode_queue) >= state.decode_capacity:
            return
        group = state.fetch_unit.fetch_cycle(state.cycle)
        ready = state.cycle + state.config.frontend_stages
        for op in group:
            state.decode_queue.append((ready, op))
        state.stats.fetched_instructions += len(group)
        state.stats.fetched_wrong_path += sum(1 for op in group if op.wrong_path)


#: The canonical stage ordering (reverse pipeline order; see module docstring).
def default_stages() -> list:
    """Fresh instances of the five stages in execution order."""
    return [CommitStage(), WritebackStage(), IssueStage(), RenameStage(),
            FetchStage()]
