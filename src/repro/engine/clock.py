"""Simulation clocks: per-cycle stepping and event-driven fast-forward.

A clock decides how far :attr:`MachineState.cycle` advances between stage
sweeps.  :class:`CycleClock` reproduces the classic loop — one sweep per
cycle, no exceptions — and is the reference the equivalence tests compare
against.  :class:`EventClock` detects *quiescent* machine states and jumps
straight to the next cycle at which any stage can act.

A machine is quiescent at cycle ``c`` when every stage's sweep at ``c``
would be a no-op (modulo deterministic stall accounting):

* **commit** — the ROS head is absent or not yet completed;
* **writeback** — no completion event is scheduled at ``c``;
* **issue** — no unissued entry is ready: every one still waits on a
  producer, or is a load blocked by an older store with an unknown
  address (a *ready* entry always either issues or books a structural
  stall, so its presence forbids skipping);
* **rename** — the front-end pipe is drained, or its head is not yet
  through the decode stages, or the head is blocked on a resource hazard
  (ROS/LSQ/checkpoints full or no free destination register).  Hazard
  conditions only change at commit/writeback events, so the blocked state
  — and its per-cycle stall counter — is constant across the gap;
* **fetch** — the pipe is at capacity, the trace is exhausted, or the
  fetch unit is stalled on an instruction-cache miss.

The jump target is the earliest cycle any of this changes: the next
completion event, the cycle the pipe head leaves decode, or the end of the
I-cache stall.  Statistics are *jump-aware*: a rename hazard that would
have booked one dispatch-stall per spun cycle books ``skipped`` of them at
jump time, so the event-driven run produces bit-identical
:class:`~repro.pipeline.stats.SimStats` to the per-cycle loop.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.engine.stages import dispatch_hazard
from repro.engine.state import MachineState

#: Sentinel for "no wake-up event found".
_NEVER = None


class CycleClock:
    """The classic loop: advance exactly one cycle per stage sweep."""

    #: clocks expose how much fast-forwarding happened (zero here).
    fast_forwards = 0
    cycles_skipped = 0

    def advance(self, state: MachineState,
                max_cycles: Optional[int] = None) -> None:
        """Per-cycle stepping never jumps; the engine's ``cycle += 1`` rules."""


class EventClock:
    """Event-driven clock: skip cycles in which no stage can act."""

    def __init__(self) -> None:
        #: number of jumps performed.
        self.fast_forwards = 0
        #: total cycles skipped over all jumps.
        self.cycles_skipped = 0

    # ------------------------------------------------------------------
    def advance(self, state: MachineState,
                max_cycles: Optional[int] = None) -> None:
        """Fast-forward ``state.cycle`` to the next actionable cycle.

        Called by the engine *before* a stage sweep.  When the machine is
        quiescent, jumps to the earliest wake-up event (capped at
        ``max_cycles``, where the run loop stops) and books the dispatch
        stalls the skipped cycles would have accumulated.
        """
        wake = self._next_wake(state)
        if wake is _NEVER:
            return
        wake_cycle, stall_reason = wake
        if max_cycles is not None and wake_cycle > max_cycles:
            wake_cycle = max_cycles
        skipped = wake_cycle - state.cycle
        if skipped <= 0:
            return
        if stall_reason is not None:
            state.stats.dispatch_stalls[stall_reason] += skipped
        state.cycle = wake_cycle
        self.fast_forwards += 1
        self.cycles_skipped += skipped

    # ------------------------------------------------------------------
    def _next_wake(self, state: MachineState) -> Optional[Tuple[int, Optional[str]]]:
        """Earliest cycle any stage can act, or None when the current cycle
        cannot be skipped.

        Returns ``(wake_cycle, stall_reason)`` with ``wake_cycle >
        state.cycle``; ``stall_reason`` names the dispatch hazard blocking
        a ready front-end pipe head (one booked stall per skipped cycle),
        or None when rename is simply empty or not yet fed.
        """
        cycle = state.cycle

        # Commit would act on a completed head (commit-width continuation).
        head = state.ros.head()
        if head is not None and head.completed:
            return _NEVER

        # Writeback: the next completion event bounds the jump.
        wake: Optional[int] = None
        if state.completions:
            wake = min(state.completions)
            if wake <= cycle:
                return _NEVER

        # Fetch must be a no-op for every skipped cycle (checked before the
        # reorder-structure scan: an actively fetching front end is the
        # common busy case, and this test is O(1)).
        fetch_unit = state.fetch_unit
        if len(state.decode_queue) >= state.decode_capacity:
            pass                                  # pipe full: fetch returns early
        elif fetch_unit.trace_exhausted:
            pass                                  # nothing left to fetch
        elif fetch_unit.stalled_until > cycle:    # I-cache miss in progress
            stall_end = fetch_unit.stalled_until
            wake = stall_end if wake is None else min(wake, stall_end)
        else:
            return _NEVER                         # fetch would deliver a group

        # Rename: a ready pipe head must be hazard-blocked (the hazard is
        # constant across the gap — it only changes at commit/writeback
        # events, of which the gap has none); a not-yet-decoded head caps
        # the jump at its decode-exit cycle.
        stall_reason: Optional[str] = None
        if state.decode_queue:
            ready_cycle, op = state.decode_queue[0]
            if ready_cycle > cycle:
                wake = ready_cycle if wake is None else min(wake, ready_cycle)
            else:
                stall_reason = dispatch_hazard(state, op.inst)
                if stall_reason is None:
                    return _NEVER

        if wake is None or wake <= cycle:
            return _NEVER

        # Issue: a ready entry would either issue or book a structural
        # stall every cycle; both forbid skipping.  Waiting entries only
        # wake at a completion event; loads blocked on an older store's
        # unknown address only unblock when that store issues.
        lsq = state.lsq
        for entry in state.ros:
            if entry.issued or entry.completed:
                continue
            if entry.wait_producers:
                continue
            if entry.inst.is_load and not lsq.load_may_issue(entry.seq):
                continue
            return _NEVER

        return wake, stall_reason
