"""Simulation clocks: per-cycle stepping and event-driven fast-forward.

A clock decides how far :attr:`MachineState.cycle` advances between stage
sweeps.  :class:`CycleClock` reproduces the classic loop — one sweep per
cycle, no exceptions — and is the reference the equivalence tests compare
against.  :class:`EventClock` computes a *per-stage wake time* from the
scheduler indexes of :mod:`repro.engine.events` and jumps straight to the
earliest of them.

A cycle can be skipped when no stage would do *observable work* at it.
Stages whose only per-cycle effect is deterministic stall accounting do
not forbid the jump — their stalls are booked in bulk at jump time — so
the clock fast-forwards through **partially idle** windows, not just
fully quiescent ones.  Per stage, the wake time is:

* **commit** — a completed ROS head retires *now* (never skippable);
* **writeback** — the next scheduled completion event with at least one
  non-squashed entry
  (:meth:`~repro.engine.events.CompletionQueue.next_live_cycle`, O(1)
  amortised; events stranded by squashes are dropped, not woken for);
* **issue** — *now* when any ready-set entry has a free functional unit;
  when every ready entry is structurally blocked, the earliest
  :meth:`~repro.backend.functional_units.FunctionalUnitPool.next_free_cycle`
  of their pools, with one structural stall per blocked entry booked for
  each skipped cycle (the per-cycle scan would have counted exactly
  those).  Instructions waiting on producers or on older store addresses
  are not in the ready set and wake only through writeback/issue events,
  which themselves bound the jump;
* **rename** — *now* when the decode head is ready and hazard-free; a
  hazard-blocked head books one dispatch stall per skipped cycle (hazard
  conditions only change at commit/writeback/issue events, of which the
  gap has none); a head still in decode caps the jump at its decode-exit
  cycle;
* **fetch** — *now* when the front-end pipe has room, the trace has
  instructions and no I-cache miss is in flight; the stall end caps the
  jump otherwise.

The jump target is the minimum of the per-stage wake times; statistics
are *jump-aware*, so the event-driven run produces bit-identical
:class:`~repro.pipeline.stats.SimStats` to the per-cycle loop.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.engine.stages import dispatch_hazard
from repro.engine.state import MachineState

#: Sentinel for "no wake-up event found".
_NEVER = None


class CycleClock:
    """The classic loop: advance exactly one cycle per stage sweep."""

    #: clocks expose how much fast-forwarding happened (zero here).
    fast_forwards = 0
    cycles_skipped = 0

    def advance(self, state: MachineState,
                max_cycles: Optional[int] = None) -> None:
        """Per-cycle stepping never jumps; the engine's ``cycle += 1`` rules."""


class EventClock:
    """Event-driven clock: jump to the earliest per-stage wake time."""

    def __init__(self) -> None:
        #: number of jumps performed.
        self.fast_forwards = 0
        #: total cycles skipped over all jumps.
        self.cycles_skipped = 0

    # ------------------------------------------------------------------
    def advance(self, state: MachineState,
                max_cycles: Optional[int] = None) -> None:
        """Fast-forward ``state.cycle`` to the next actionable cycle.

        Called by the engine *before* a stage sweep.  When no stage would
        do observable work this cycle, jumps to the earliest wake-up event
        (capped at ``max_cycles``, where the run loop stops) and books the
        dispatch and structural stalls the skipped cycles would have
        accumulated.
        """
        wake = self._next_wake(state)
        if wake is _NEVER:
            return
        wake_cycle, stall_reason, blocked_ready = wake
        if max_cycles is not None and wake_cycle > max_cycles:
            wake_cycle = max_cycles
        skipped = wake_cycle - state.cycle
        if skipped <= 0:
            return
        if stall_reason is not None:
            state.stats.dispatch_stalls[stall_reason] += skipped
        if blocked_ready:
            state.fus.note_structural_stall(skipped * blocked_ready)
        state.cycle = wake_cycle
        self.fast_forwards += 1
        self.cycles_skipped += skipped

    # ------------------------------------------------------------------
    def _next_wake(self, state: MachineState,
                   ) -> Optional[Tuple[int, Optional[str], int]]:
        """Earliest cycle any stage does observable work, or None when the
        current cycle cannot be skipped.

        Returns ``(wake_cycle, stall_reason, blocked_ready)`` with
        ``wake_cycle > state.cycle``; ``stall_reason`` names the dispatch
        hazard blocking a ready front-end pipe head (one booked stall per
        skipped cycle, None when rename is simply empty or not yet fed);
        ``blocked_ready`` is the number of ready instructions structurally
        stalled across the gap (each books one structural stall per
        skipped cycle).
        """
        cycle = state.cycle

        # Commit would act on a completed head (commit-width continuation).
        ros = state.ros
        if ros._count and ros._rows[ros._head].completed:
            return _NEVER

        # Writeback: the next *live* completion event bounds the jump
        # (buckets holding only squashed entries are dropped on the way —
        # they can never produce observable work).
        wake = state.completions.next_live_cycle()
        if wake is not None and wake <= cycle:
            return _NEVER

        # Fetch must be a no-op for every skipped cycle (checked before
        # the rename/issue probes: an actively fetching front end is the
        # common busy case, and this test is O(1)).
        fetch_unit = state.fetch_unit
        if len(state.decode_queue) >= state.decode_capacity:
            pass                                  # pipe full: fetch returns early
        elif fetch_unit.trace_exhausted:
            pass                                  # nothing left to fetch
        elif fetch_unit.stalled_until > cycle:    # I-cache miss in progress
            stall_end = fetch_unit.stalled_until
            wake = stall_end if wake is None else min(wake, stall_end)
        else:
            return _NEVER                         # fetch would deliver a group

        # Rename: a ready pipe head must be hazard-blocked (the hazard is
        # constant across the gap — it only changes at commit, writeback
        # or issue events, of which the gap has none); a not-yet-decoded
        # head caps the jump at its decode-exit cycle.
        stall_reason: Optional[str] = None
        if state.decode_queue:
            ready_cycle, op = state.decode_queue[0]
            if ready_cycle > cycle:
                wake = ready_cycle if wake is None else min(wake, ready_cycle)
            else:
                stall_reason = dispatch_hazard(state, op.inst)
                if stall_reason is None:
                    return _NEVER

        # Issue: when every ready entry is structurally blocked, the gap
        # is bounded by the first cycle one of their pools frees up, and
        # each blocked entry books one structural stall per skipped cycle
        # (the per-cycle scan visits all of them while nothing issues).
        # Entries waiting on producers or on older store addresses only
        # wake at writeback/issue events — none occur inside the gap.
        blocked_ready = 0
        if state.ready:
            fus = state.fus
            fu_wake: Optional[int] = None
            for entry in state.ready.entries():
                if fus.can_issue(entry.inst.op, cycle):
                    return _NEVER                 # something issues now
                next_free = fus.next_free_cycle(entry.inst.op)
                if fu_wake is None or next_free < fu_wake:
                    fu_wake = next_free
            blocked_ready = len(state.ready)
            wake = fu_wake if wake is None else min(wake, fu_wake)

        if wake is None or wake <= cycle:
            return _NEVER
        return wake, stall_reason, blocked_ready
