"""Event-driven simulation engine with composable pipeline stages.

This package hosts the simulation kernel: :class:`MachineState` (the
explicit shared machine state), the five :class:`Stage` objects
(commit, writeback, issue, rename, fetch), the indexed scheduler
structures (:class:`ReadySet`, :class:`WakeupIndex`,
:class:`CompletionQueue`), the clocks (:class:`CycleClock` for classic
per-cycle stepping, :class:`EventClock` for per-stage wake-time
fast-forward) and :class:`SimulationEngine`, which wires them together.
:func:`simulate` is the one-call entry point.

The legacy :class:`repro.pipeline.processor.Processor` and
:func:`repro.pipeline.processor.simulate` remain as thin facades over this
package, so existing callers keep working unchanged.
"""

from repro.engine.clock import CycleClock, EventClock
from repro.engine.engine import DeadlockError, SimulationEngine, simulate
from repro.engine.events import CompletionQueue, ReadySet, WakeupIndex
from repro.engine.stages import (
    CommitStage,
    FetchStage,
    IssueStage,
    RenameStage,
    Stage,
    WritebackStage,
    default_stages,
    dispatch_hazard,
    may_avoid_allocation,
)
from repro.engine.state import (
    STALL_CHECKPOINTS_FULL,
    STALL_LSQ_FULL,
    STALL_NO_FREE_FP,
    STALL_NO_FREE_INT,
    STALL_ROS_FULL,
    MachineState,
)

__all__ = [
    "CycleClock",
    "EventClock",
    "CompletionQueue",
    "ReadySet",
    "WakeupIndex",
    "DeadlockError",
    "SimulationEngine",
    "simulate",
    "Stage",
    "CommitStage",
    "WritebackStage",
    "IssueStage",
    "RenameStage",
    "FetchStage",
    "default_stages",
    "dispatch_hazard",
    "may_avoid_allocation",
    "MachineState",
    "STALL_ROS_FULL",
    "STALL_LSQ_FULL",
    "STALL_CHECKPOINTS_FULL",
    "STALL_NO_FREE_INT",
    "STALL_NO_FREE_FP",
]
