"""Indexed scheduler structures: ready set, wakeup index, completion queue.

The issue stage used to rediscover ready instructions by scanning the
whole Reorder Structure every cycle, and the event clock re-scanned it
again to prove quiescence.  This module replaces those scans with three
incrementally maintained indexes over the in-flight window:

* :class:`ReadySet` — the age-ordered queue of instructions whose source
  operands are all available and (for loads) whose older store addresses
  are all known.  The issue stage pops it oldest-first; the event clock
  reads its size and members in O(1)/O(ready).
* :class:`WakeupIndex` — the producer→consumer lists.  Writeback calls
  :meth:`WakeupIndex.wake` with a completing producer and gets back
  exactly the consumers whose *last* outstanding producer that was, so
  only those are promoted to the ready set.
* :class:`CompletionQueue` — completion events keyed by cycle with a
  min-heap over the scheduled cycles, so "when is the next writeback?"
  is O(1) for the event clock instead of ``min()`` over dict keys.

Staleness discipline
--------------------
All three indexes use lazy deletion: squash removes the authoritative
dict entry (or simply leaves the reference behind) and stale keys are
skipped on the next pop, which keeps misprediction recovery O(squashed)
instead of O(heap).  Because the columnar Reorder Structure *recycles*
its row handles (:class:`repro.backend.ros.ROSEntry` objects are reused
once their occupant leaves the window), a parked reference alone no
longer proves identity: the wakeup lists and completion buckets
therefore store the **sequence number alongside the handle** and treat a
reference whose ``entry.seq`` no longer matches as dead.  Sequence
numbers are never reused, so the check is exact — a stale key can never
alias a live entry.  The :class:`ReadySet` needs no tag because its
membership dict is keyed by seq and squash removes the key eagerly.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, ValuesView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backend.ros import ROSEntry

#: A handle tagged with the sequence number it was stored under; the
#: reference is dead when ``entry.seq != seq`` (the row was recycled).
TaggedEntry = Tuple[int, "ROSEntry"]


class ReadySet:
    """Age-ordered set of issue-ready instructions (min-heap on seq).

    Membership is the dict (``seq -> entry``); the heap only orders
    candidate sequence numbers and may lag behind after :meth:`discard`
    (squash) — stale keys are dropped on the next :meth:`pop`.
    """

    __slots__ = ("_heap", "_entries", "peak_size")

    def __init__(self) -> None:
        self._heap: List[int] = []
        self._entries: Dict[int, "ROSEntry"] = {}
        #: high-water mark of the membership (scheduler telemetry).
        self.peak_size = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, seq: int) -> bool:
        return seq in self._entries

    def entries(self) -> ValuesView["ROSEntry"]:
        """Live members, unordered (the clock's structural-stall probe)."""
        return self._entries.values()

    # ------------------------------------------------------------------
    def add(self, entry: "ROSEntry") -> None:
        """Insert ``entry``; a no-op when it is already a member."""
        seq = entry.seq
        if seq in self._entries:
            return
        self._entries[seq] = entry
        heapq.heappush(self._heap, seq)
        if len(self._entries) > self.peak_size:
            self.peak_size = len(self._entries)

    def discard(self, seq: int) -> None:
        """Remove ``seq`` if present (squash); the heap key goes stale."""
        self._entries.pop(seq, None)

    def pop(self) -> "ROSEntry":
        """Remove and return the oldest ready entry."""
        heap = self._heap
        entries = self._entries
        while heap:
            seq = heapq.heappop(heap)
            entry = entries.pop(seq, None)
            if entry is not None:
                return entry
        raise IndexError("pop from an empty ReadySet")

    def clear(self) -> None:
        """Drop every member (exception flush)."""
        self._heap.clear()
        self._entries.clear()


class WakeupIndex:
    """Producer seq → list of consumers still waiting on it.

    Consumers are stored seq-tagged (see the module docstring): a waiter
    whose handle was recycled after a squash is recognised by its
    mismatching sequence number and skipped without touching the new
    occupant's state.
    """

    __slots__ = ("_waiters",)

    def __init__(self) -> None:
        self._waiters: Dict[int, List[TaggedEntry]] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._waiters)

    def register(self, producer_seq: int, consumer: "ROSEntry") -> None:
        """``consumer`` waits for the result of ``producer_seq``."""
        record = (consumer.seq, consumer)
        waiters = self._waiters.get(producer_seq)
        if waiters is None:
            self._waiters[producer_seq] = [record]
        else:
            waiters.append(record)

    def wake(self, producer_seq: int) -> List["ROSEntry"]:
        """Producer completed: clear it from every live waiter and return
        the consumers for which it was the *last* outstanding producer.

        Squashed waiters (flagged or recycled) are never returned — they
        can no longer issue — and recycled handles are left untouched.
        """
        woken: List["ROSEntry"] = []
        for seq, consumer in self._waiters.pop(producer_seq, ()):
            if consumer.seq != seq or consumer.squashed:
                continue
            consumer.wait_producers.discard(producer_seq)
            if not consumer.wait_producers:
                woken.append(consumer)
        return woken

    def drop(self, producer_seq: int) -> None:
        """Forget the waiters of a squashed producer (they are squashed too)."""
        self._waiters.pop(producer_seq, None)

    def clear(self) -> None:
        """Drop every list (exception flush)."""
        self._waiters.clear()


class CompletionQueue:
    """Completion events bucketed by cycle, with an O(1) next-cycle probe.

    The writeback stage drains the bucket of the current cycle; the event
    clock bounds its jumps by :meth:`next_cycle`.  Buckets are the
    authority — heap keys of already-drained cycles are skipped lazily —
    and bucket members are seq-tagged so events stranded by a squash
    cannot alias the row's next occupant (module docstring).
    """

    __slots__ = ("_buckets", "_heap")

    def __init__(self) -> None:
        self._buckets: Dict[int, List[TaggedEntry]] = {}
        self._heap: List[int] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buckets)

    def __bool__(self) -> bool:
        return bool(self._buckets)

    def schedule(self, cycle: int, entry: "ROSEntry") -> None:
        """``entry`` finishes execution at ``cycle``."""
        bucket = self._buckets.get(cycle)
        record = (entry.seq, entry)
        if bucket is None:
            self._buckets[cycle] = [record]
            heapq.heappush(self._heap, cycle)
        else:
            bucket.append(record)

    def pop_due(self, cycle: int) -> Optional[List[TaggedEntry]]:
        """Remove and return the (seq-tagged) events of ``cycle``.

        Dead members are *not* filtered here: a branch resolving early in
        the drained bucket can squash younger entries later in the same
        bucket, so liveness (``entry.seq == seq and not entry.squashed``)
        must be re-tested per entry at the moment it is processed, not at
        drain time.  Returns None when the cycle holds no events at all.
        """
        return self._buckets.pop(cycle, None)

    def next_cycle(self) -> Optional[int]:
        """Earliest cycle with a pending event, or None when empty."""
        heap = self._heap
        buckets = self._buckets
        while heap:
            if heap[0] in buckets:
                return heap[0]
            heapq.heappop(heap)
        return None

    def next_live_cycle(self) -> Optional[int]:
        """Earliest cycle whose bucket holds a live (non-squashed,
        non-recycled) entry.

        Buckets containing only dead events are dropped on the way:
        squash is permanent (sequence numbers are never reused), so such
        a bucket can never produce observable work — waking the machine
        for it would cost one spurious stage sweep.  The event clock
        bounds its jumps with this; the writeback stage keeps draining
        via :meth:`pop_due`, which is unaffected by the early drops.
        """
        heap = self._heap
        buckets = self._buckets
        while heap:
            cycle = heap[0]
            bucket = buckets.get(cycle)
            if bucket is None:
                heapq.heappop(heap)
                continue
            if any(entry.seq == seq and not entry.squashed
                   for seq, entry in bucket):
                return cycle
            del buckets[cycle]
            heapq.heappop(heap)
        return None

    def pending(self) -> Iterable["ROSEntry"]:
        """Every live scheduled entry, in no particular order (tests)."""
        for bucket in self._buckets.values():
            for seq, entry in bucket:
                if entry.seq == seq:
                    yield entry

    def clear(self) -> None:
        """Drop every event (tests/debugging; flushes keep squashed events)."""
        self._buckets.clear()
        self._heap.clear()
