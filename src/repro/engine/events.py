"""Indexed scheduler structures: ready set, wakeup index, completion queue.

The issue stage used to rediscover ready instructions by scanning the
whole Reorder Structure every cycle, and the event clock re-scanned it
again to prove quiescence.  This module replaces those scans with three
incrementally maintained indexes over the in-flight window:

* :class:`ReadySet` — the age-ordered queue of instructions whose source
  operands are all available and (for loads) whose older store addresses
  are all known.  The issue stage pops it oldest-first; the event clock
  reads its size and members in O(1)/O(ready).
* :class:`WakeupIndex` — the producer→consumer lists.  Writeback calls
  :meth:`WakeupIndex.wake` with a completing producer and gets back
  exactly the consumers whose *last* outstanding producer that was, so
  only those are promoted to the ready set.
* :class:`CompletionQueue` — completion events keyed by cycle with a
  min-heap over the scheduled cycles, so "when is the next writeback?"
  is O(1) for the event clock instead of ``min()`` over dict keys.

All three use lazy deletion against an authoritative dict: squash simply
removes the dict entry and lets stale heap keys be skipped on the next
pop, which keeps misprediction recovery O(squashed) instead of
O(heap).  Sequence numbers are never reused, so a stale key can never
alias a live entry.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, ValuesView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backend.ros import ROSEntry


class ReadySet:
    """Age-ordered set of issue-ready instructions (min-heap on seq).

    Membership is the dict (``seq -> entry``); the heap only orders
    candidate sequence numbers and may lag behind after :meth:`discard`
    (squash) — stale keys are dropped on the next :meth:`pop`.
    """

    __slots__ = ("_heap", "_entries", "peak_size")

    def __init__(self) -> None:
        self._heap: List[int] = []
        self._entries: Dict[int, "ROSEntry"] = {}
        #: high-water mark of the membership (scheduler telemetry).
        self.peak_size = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, seq: int) -> bool:
        return seq in self._entries

    def entries(self) -> ValuesView["ROSEntry"]:
        """Live members, unordered (the clock's structural-stall probe)."""
        return self._entries.values()

    # ------------------------------------------------------------------
    def add(self, entry: "ROSEntry") -> None:
        """Insert ``entry``; a no-op when it is already a member."""
        seq = entry.seq
        if seq in self._entries:
            return
        self._entries[seq] = entry
        heapq.heappush(self._heap, seq)
        if len(self._entries) > self.peak_size:
            self.peak_size = len(self._entries)

    def discard(self, seq: int) -> None:
        """Remove ``seq`` if present (squash); the heap key goes stale."""
        self._entries.pop(seq, None)

    def pop(self) -> "ROSEntry":
        """Remove and return the oldest ready entry."""
        heap = self._heap
        entries = self._entries
        while heap:
            seq = heapq.heappop(heap)
            entry = entries.pop(seq, None)
            if entry is not None:
                return entry
        raise IndexError("pop from an empty ReadySet")

    def clear(self) -> None:
        """Drop every member (exception flush)."""
        self._heap.clear()
        self._entries.clear()


class WakeupIndex:
    """Producer seq → list of consumers still waiting on it."""

    __slots__ = ("_waiters",)

    def __init__(self) -> None:
        self._waiters: Dict[int, List["ROSEntry"]] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._waiters)

    def register(self, producer_seq: int, consumer: "ROSEntry") -> None:
        """``consumer`` waits for the result of ``producer_seq``."""
        self._waiters.setdefault(producer_seq, []).append(consumer)

    def wake(self, producer_seq: int) -> List["ROSEntry"]:
        """Producer completed: clear it from every waiter and return the
        consumers for which it was the *last* outstanding producer.

        Squashed waiters are cleared but never returned — they can no
        longer issue.
        """
        woken: List["ROSEntry"] = []
        for consumer in self._waiters.pop(producer_seq, ()):
            consumer.wait_producers.discard(producer_seq)
            if consumer.squashed:
                continue
            if not consumer.wait_producers:
                woken.append(consumer)
        return woken

    def drop(self, producer_seq: int) -> None:
        """Forget the waiters of a squashed producer (they are squashed too)."""
        self._waiters.pop(producer_seq, None)

    def clear(self) -> None:
        """Drop every list (exception flush)."""
        self._waiters.clear()


class CompletionQueue:
    """Completion events bucketed by cycle, with an O(1) next-cycle probe.

    The writeback stage drains the bucket of the current cycle; the event
    clock bounds its jumps by :meth:`next_cycle`.  Buckets are the
    authority — heap keys of already-drained cycles are skipped lazily.
    """

    __slots__ = ("_buckets", "_heap")

    def __init__(self) -> None:
        self._buckets: Dict[int, List["ROSEntry"]] = {}
        self._heap: List[int] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buckets)

    def __bool__(self) -> bool:
        return bool(self._buckets)

    def schedule(self, cycle: int, entry: "ROSEntry") -> None:
        """``entry`` finishes execution at ``cycle``."""
        bucket = self._buckets.get(cycle)
        if bucket is None:
            self._buckets[cycle] = [entry]
            heapq.heappush(self._heap, cycle)
        else:
            bucket.append(entry)

    def pop_due(self, cycle: int) -> Optional[List["ROSEntry"]]:
        """Remove and return the events of ``cycle`` (None when there are none)."""
        return self._buckets.pop(cycle, None)

    def next_cycle(self) -> Optional[int]:
        """Earliest cycle with a pending event, or None when empty."""
        heap = self._heap
        buckets = self._buckets
        while heap:
            if heap[0] in buckets:
                return heap[0]
            heapq.heappop(heap)
        return None

    def next_live_cycle(self) -> Optional[int]:
        """Earliest cycle whose bucket holds a non-squashed entry.

        Buckets containing only squashed entries are dropped on the way:
        squash is permanent (sequence numbers are never reused), so such a
        bucket can never produce observable work — waking the machine for
        it would cost one spurious stage sweep.  The event clock bounds
        its jumps with this; the writeback stage keeps draining via
        :meth:`pop_due`, which is unaffected by the early drops.
        """
        heap = self._heap
        buckets = self._buckets
        while heap:
            cycle = heap[0]
            bucket = buckets.get(cycle)
            if bucket is None:
                heapq.heappop(heap)
                continue
            if any(not entry.squashed for entry in bucket):
                return cycle
            del buckets[cycle]
            heapq.heappop(heap)
        return None

    def pending(self) -> Iterable["ROSEntry"]:
        """Every scheduled entry, in no particular order (tests/debugging)."""
        for bucket in self._buckets.values():
            yield from bucket

    def clear(self) -> None:
        """Drop every event (tests/debugging; flushes keep squashed events)."""
        self._buckets.clear()
        self._heap.clear()
