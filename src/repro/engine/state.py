"""Shared machine state operated on by the pipeline stages.

:class:`MachineState` owns every structure of the simulated processor —
front end, rename substrate, back end, the scheduler indexes of
:mod:`repro.engine.events` (ready set, wakeup index, completion queue)
and the statistics — and implements the
:class:`repro.core.release_policy.PipelineView` protocol the release
policies query.  The stages in :mod:`repro.engine.stages` are stateless
and mutate one ``MachineState``; the clocks in :mod:`repro.engine.clock`
advance :attr:`MachineState.cycle`.

The scheduler indexes are maintained *incrementally*: rename either
inserts an instruction into :attr:`ready` (operands available) or
registers it on its producers' wakeup lists; writeback promotes exactly
the consumers whose last producer completed; squash recovery filters the
indexes by the squashed window.  :meth:`make_issue_ready` is the single
funnel through which an instruction enters the ready set, so the
"park blocked loads on their first unknown-address store" rule lives in
one place.

Cross-stage state transitions (misprediction recovery, precise-exception
flush, squash undo) live here because more than one stage triggers them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.backend.functional_units import FunctionalUnitPool
from repro.backend.lsq import LoadStoreQueue
from repro.backend.ros import ROSEntry, ReorderStructure
from repro.core import make_release_policy
from repro.engine.events import CompletionQueue, ReadySet, WakeupIndex
from repro.core.release_policy import PolicyOptions, ReleasePolicy
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.fetch import FetchedOp, FetchUnit
from repro.frontend.gshare import GsharePredictor
from repro.isa import RegClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.stats import RegisterFileStats, SimStats
from repro.rename.checkpoints import CheckpointStack
from repro.rename.iomt import InOrderMapTable
from repro.rename.map_table import MapTable
from repro.rename.register_file import PhysicalRegisterFile
from repro.trace.records import Trace
from repro.trace.wrongpath import WrongPathGenerator

#: Dispatch stall reason labels used in :attr:`SimStats.dispatch_stalls`.
STALL_ROS_FULL = "ros_full"
STALL_LSQ_FULL = "lsq_full"
STALL_CHECKPOINTS_FULL = "checkpoints_full"
STALL_NO_FREE_INT = "no_free_int_register"
STALL_NO_FREE_FP = "no_free_fp_register"


class MachineState:
    """All mutable state of one simulated processor (paper Table 2)."""

    def __init__(self, trace: Trace, config: Optional[ProcessorConfig] = None) -> None:
        self.trace = trace
        self.config = config or ProcessorConfig()
        cfg = self.config

        # ------------------------------------------------------------ memory & front end
        self.memory = MemoryHierarchy(cfg.memory)
        self.predictor = GsharePredictor(history_bits=cfg.gshare_history_bits)
        self.btb = BranchTargetBuffer(entries=cfg.btb_entries,
                                      associativity=cfg.btb_associativity)
        wrongpath = (WrongPathGenerator.for_trace(trace, seed=cfg.seed)
                     if cfg.enable_wrong_path else None)
        self.fetch_unit = FetchUnit(
            trace, self.predictor, self.btb, self.memory, wrongpath,
            fetch_width=cfg.fetch_width,
            max_taken_per_cycle=cfg.max_taken_branches_per_cycle)

        # ------------------------------------------------------------ rename substrate
        self.register_files: Dict[RegClass, PhysicalRegisterFile] = {
            RegClass.INT: PhysicalRegisterFile(RegClass.INT, cfg.num_physical_int,
                                               cfg.num_logical_int),
            RegClass.FP: PhysicalRegisterFile(RegClass.FP, cfg.num_physical_fp,
                                              cfg.num_logical_fp),
        }
        self.map_tables: Dict[RegClass, MapTable] = {
            rc: MapTable(rf.num_logical, range(rf.num_logical))
            for rc, rf in self.register_files.items()
        }
        self.iomts: Dict[RegClass, InOrderMapTable] = {
            rc: InOrderMapTable(rf.num_logical, range(rf.num_logical))
            for rc, rf in self.register_files.items()
        }
        self.checkpoints = CheckpointStack(capacity=cfg.max_pending_branches)

        options = PolicyOptions(reuse_on_committed_lu=cfg.reuse_on_committed_lu)
        # The extended policy's Release Queue is as deep as the checkpoint
        # stack: one level per unresolved branch, so the config's
        # max_pending_branches bounds both (a level can never overflow
        # before the checkpoint hazard stalls rename).
        policy_kwargs = ({"release_queue_capacity": cfg.max_pending_branches}
                         if cfg.release_policy == "extended" else {})
        self.policies: Dict[RegClass, ReleasePolicy] = {
            rc: make_release_policy(cfg.release_policy, rc, self.register_files[rc],
                                    self.map_tables[rc], self.iomts[rc], self,
                                    options=options, **policy_kwargs)
            for rc in (RegClass.INT, RegClass.FP)
        }
        #: the same two policies as a tuple: the per-commit/per-rename hooks
        #: iterate this instead of rebuilding a dict values view each entry.
        self.policy_list: Tuple[ReleasePolicy, ...] = tuple(self.policies.values())

        # ------------------------------------------------------------ back end
        self.ros = ReorderStructure(capacity=cfg.ros_size)
        self.lsq = LoadStoreQueue(capacity=cfg.lsq_size)
        self.fus = FunctionalUnitPool(cfg.functional_units)

        # ------------------------------------------------------------ pipeline state
        self.cycle = 0
        self.seq = 0
        self.committed_watermark = -1
        #: front-end pipe: (cycle the op becomes available to rename, op).
        self.decode_queue: Deque[Tuple[int, FetchedOp]] = deque()
        #: front-end pipe bound: fetch-to-rename latency at full width plus
        #: two groups of slack (config-derived constant, read every cycle).
        self.decode_capacity = (cfg.frontend_stages + 2) * cfg.fetch_width
        #: completion events, indexed by cycle (next-writeback in O(1)).
        self.completions = CompletionQueue()
        #: producer -> consumer wakeup lists.
        self.consumers = WakeupIndex()
        #: age-ordered queue of issue-ready instructions.
        self.ready = ReadySet()
        self.exception_rng = np.random.default_rng(cfg.seed + 0xE)

        # ------------------------------------------------------------ rename fast-path hooks
        #: True when the exception lottery must be drawn at all.
        self.exception_enabled = cfg.exception_rate > 0.0
        #: per class: the policy's source-use / dest-definition hooks, or
        #: None when the policy inherits the base no-op (conventional
        #: release) — the rename loop then skips the call entirely.
        base = ReleasePolicy
        self.source_use_hooks = {
            rc: (p.note_source_use
                 if type(p).note_source_use is not base.note_source_use else None)
            for rc, p in self.policies.items()
        }
        self.dest_def_hooks = {
            rc: (p.note_dest_definition
                 if type(p).note_dest_definition is not base.note_dest_definition
                 else None)
            for rc, p in self.policies.items()
        }
        #: per class: direct views of the map-table mapping list and the
        #: register file's producer list (identity-stable; see
        #: :meth:`repro.rename.map_table.MapTable.restore`).
        self.map_lists = {rc: mt._map for rc, mt in self.map_tables.items()}
        self.producer_lists = {rc: rf._producer
                               for rc, rf in self.register_files.items()}
        #: per class: the occupancy tracker's last-use-commit array and the
        #: IOMT mapping list, written directly by the (per-instruction)
        #: commit loop.
        self.last_use_lists = {rc: rf._occ_last_use
                               for rc, rf in self.register_files.items()}
        self.iomt_lists = {rc: iomt._map for rc, iomt in self.iomts.items()}
        #: per class: the free list's deque (truthiness == can_allocate)
        #: for the dispatch-hazard probe, which runs once per rename
        #: attempt — every cycle while register-stalled.
        self.free_deques = {rc: rf.free_list._free
                           for rc, rf in self.register_files.items()}

        # ------------------------------------------------------------ statistics
        self.stats = SimStats(benchmark=trace.name, release_policy=cfg.release_policy)
        self.stats.dispatch_stalls = {
            STALL_ROS_FULL: 0, STALL_LSQ_FULL: 0, STALL_CHECKPOINTS_FULL: 0,
            STALL_NO_FREE_INT: 0, STALL_NO_FREE_FP: 0,
        }
        self.last_commit_cycle = 0

        #: warm-up owed but not yet run.  When the compiled backend is
        #: requested and can model this config, the (expensive) Python
        #: warm-up pass is deferred: the compiled core replays the warm-up
        #: trace itself inside sim_run, and any path that instead steps
        #: the Python engine calls :meth:`ensure_warm` first.
        self.warmup_pending = False
        if cfg.warmup:
            if self._defer_warmup_to_backend():
                self.warmup_pending = True
            else:
                self._warm_state()

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True when every fetched instruction has drained from the pipeline."""
        return (self.fetch_unit.trace_exhausted and not self.decode_queue
                and self.ros.is_empty)

    # ------------------------------------------------------------------
    def _defer_warmup_to_backend(self) -> bool:
        """Should warm-up run inside the compiled core instead of here?

        Purely config-driven (no toolchain probe at construction time): the
        compiled backend must be the requested engine and the config inside
        its envelope.  If the toolchain later turns out to be unavailable,
        the Python engine calls :meth:`ensure_warm` before stepping.
        """
        from repro.engine.accel import requested_backend
        from repro.engine.accel.compiled import unsupported_reason

        if requested_backend(self.config) != "compiled":
            return False
        return unsupported_reason(self.config) is None

    def ensure_warm(self) -> None:
        """Run the deferred warm-up pass if one is still owed."""
        if self.warmup_pending:
            self.warmup_pending = False
            self._warm_state()

    def _warm_state(self) -> None:
        """Bring caches, BTB and branch predictor to steady state.

        The paper measures multi-hundred-million-instruction runs, so its
        structures are warm for essentially the whole measurement.  The
        scaled-down traces used here would otherwise be dominated by cold
        misses and predictor training; one functional pass (no timing) over
        a *different* segment of the same benchmark removes that artefact.

        The warm-up segment is generated from the same benchmark profile
        with a different seed, so the predictor learns the benchmark's
        static branch sites and statistical behaviour but cannot memorise
        the exact dynamic outcome sequence it will be measured on.  When the
        trace does not come from the workload registry (hand-built test
        traces), the trace itself is used.  Statistics are reset afterwards
        so reported rates cover only the measured run.
        """
        warmup_trace = self._build_warmup_trace()
        memory = self.memory
        instruction_access = memory.instruction_access
        data_write = memory.data_write
        data_read = memory.data_read
        predict = self.predictor.predict
        resolve = self.predictor.resolve
        btb_update = self.btb.update
        for inst in warmup_trace:
            instruction_access(inst.pc)
            if inst.is_mem:
                if inst.is_store:
                    data_write(inst.mem_addr)
                else:
                    data_read(inst.mem_addr)
            if inst.is_branch:
                record = predict(inst.pc)
                resolve(record, inst.taken)
                if inst.taken:
                    btb_update(inst.pc, inst.target)
        memory.reset_statistics()
        self.btb.reset_statistics()
        self.predictor.reset_statistics()

    def _build_warmup_trace(self) -> Trace:
        """Return the instruction sequence used for warm-up (see :meth:`_warm_state`)."""
        from repro.trace.workloads import get_workload, has_workload

        if not has_workload(self.trace.name):
            return self.trace
        length = min(len(self.trace), 20_000)
        # get_workload caches, so repeated simulations of the same benchmark
        # (different policies / register sizes) reuse the warm-up segment.
        return get_workload(self.trace.name, length, seed=self.trace.seed + 7919)

    # ==================================================================
    # PipelineView protocol (used by the release policies)
    # ==================================================================
    def is_committed(self, seq: int) -> bool:
        """In-order commit watermark test (the paper's LUs Table C bit)."""
        return seq <= self.committed_watermark

    def has_pending_branch_younger_than(self, seq: int) -> bool:
        """True when an unresolved branch younger than ``seq`` is in flight."""
        return self.checkpoints.has_pending_younger_than(seq)

    def count_pending_branches(self) -> int:
        """Number of unresolved branches (Release Queue TAIL level)."""
        return self.checkpoints.count_pending()

    def ros_entry(self, seq: int) -> Optional[ROSEntry]:
        """In-flight ROS entry with sequence number ``seq``."""
        return self.ros.find(seq)

    def current_cycle(self) -> int:
        """Current simulation cycle."""
        return self.cycle

    # ==================================================================
    # Scheduler index maintenance
    # ==================================================================
    def make_issue_ready(self, entry: ROSEntry) -> None:
        """All source operands of ``entry`` are available: queue it for issue.

        Loads additionally obey the paper's memory-ordering rule ("loads
        are executed when all previous store addresses are known"): a load
        with an older unknown-address store parks on that store's LSQ wait
        list instead, and re-enters here when the store issues.
        """
        if entry.inst.is_load and self.lsq.park_blocked_load(entry.seq, entry):
            return
        self.ready.add(entry)

    # ==================================================================
    # Cross-stage state transitions
    # ==================================================================
    def exception_flush(self, excepting: ROSEntry) -> None:
        """Precise-exception recovery: flush, rebuild the map from the IOMT."""
        squashed = self.ros.squash_all()
        self.undo_squashed(squashed)
        self.lsq.clear()
        self.checkpoints.clear()
        for reg_class, map_table in self.map_tables.items():
            map_table.restore_architectural(self.iomts[reg_class].snapshot())
        for policy in self.policies.values():
            policy.on_exception_flush(self.cycle)
        self.decode_queue.clear()
        if excepting.resume_cursor >= 0:
            self.fetch_unit.recover(excepting.resume_cursor)

    def recover_from_misprediction(self, branch: ROSEntry) -> None:
        """Squash younger instructions and restore checkpointed state."""
        # Early releases scheduled *on the branch itself* were scheduled by
        # next-version instructions younger than the branch (a last use is
        # always older than its redefinition) — all of them are squashed
        # below, so every bit must be dropped with them.  Leaving a bit set
        # would release a register the restored map table still names.
        branch.early_release_mask = 0
        squashed = self.ros.squash_younger_than(branch.seq)
        self.undo_squashed(squashed)
        self.lsq.squash_younger_than(branch.seq)

        # Conditional releases scheduled by the squashed path disappear.
        for policy in self.policies.values():
            policy.on_branch_mispredicted(branch.seq)

        checkpoint = self.checkpoints.mispredict(branch.seq)
        if checkpoint is not None:
            for reg_class, snapshot in checkpoint.map_snapshots.items():
                self.map_tables[reg_class].restore(snapshot)
            for reg_class, snapshot in checkpoint.policy_snapshots.items():
                self.policies[reg_class].restore_state(snapshot)

        self.decode_queue.clear()
        if branch.resume_cursor >= 0:
            self.fetch_unit.recover(branch.resume_cursor)

    def undo_squashed(self, squashed: List[ROSEntry]) -> None:
        """Free resources of squashed entries (called youngest first).

        The entries arrive already flagged by the ROS squash kernels
        (handle ``squashed`` attribute and column alike).  Destination
        registers allocated by the squashed window are gathered per
        register class and returned through the checked free list in one
        bulk call, preserving the youngest-first release order within
        each class.
        """
        cycle = self.cycle
        self.stats.squashed_instructions += len(squashed)
        freed: Dict[RegClass, List[int]] = {RegClass.INT: [], RegClass.FP: []}
        register_files = self.register_files
        policy_list = self.policy_list
        consumers = self.consumers
        ready = self.ready
        for entry in squashed:
            if entry.dest_class is not None:
                if entry.allocated_new:
                    freed[entry.dest_class].append(entry.pd)
                elif entry.reused:
                    # The reused register's value is still the committed one.
                    register_files[entry.dest_class].set_producer(entry.pd, None)
            for policy in policy_list:
                policy.on_squash(entry, cycle)
            consumers.drop(entry.seq)
            ready.discard(entry.seq)
        for reg_class, regs in freed.items():
            if regs:
                register_files[reg_class].release_many(regs, cycle)

    # ==================================================================
    # Statistics collection
    # ==================================================================
    def collect_stats(self) -> SimStats:
        """Close the books and return the aggregate :class:`SimStats`."""
        stats = self.stats
        stats.cycles = self.cycle
        stats.btb_hit_rate = self.btb.hit_rate
        stats.l1i_miss_rate = self.memory.l1i.miss_rate
        stats.l1d_miss_rate = self.memory.l1d.miss_rate
        stats.l2_miss_rate = self.memory.l2.miss_rate
        stats.forwarded_loads = self.lsq.forwarded_loads
        stats.structural_stalls = self.fus.structural_stalls

        for reg_class, label in ((RegClass.INT, "int"), (RegClass.FP, "fp")):
            register_file = self.register_files[reg_class]
            policy = self.policies[reg_class]
            totals = register_file.finalize_occupancy(self.cycle)
            file_stats = RegisterFileStats(
                num_physical=register_file.num_physical,
                allocations=register_file.allocations,
                releases=register_file.releases,
                early_releases=register_file.early_releases,
                register_reuses=policy.register_reuses,
                immediate_releases=policy.immediate_releases,
                scheduled_early_releases=policy.early_releases_scheduled,
                conventional_releases=policy.conventional_releases,
                conditional_schedulings=getattr(policy, "conditional_schedulings", 0),
                occupancy=totals.averages(),
            )
            if label == "int":
                stats.int_registers = file_stats
            else:
                stats.fp_registers = file_stats
        return stats
