"""Shared machine state operated on by the pipeline stages.

:class:`MachineState` owns every structure of the simulated processor —
front end, rename substrate, back end, the scheduler indexes of
:mod:`repro.engine.events` (ready set, wakeup index, completion queue)
and the statistics — and implements the
:class:`repro.core.release_policy.PipelineView` protocol the release
policies query.  The stages in :mod:`repro.engine.stages` are stateless
and mutate one ``MachineState``; the clocks in :mod:`repro.engine.clock`
advance :attr:`MachineState.cycle`.

The scheduler indexes are maintained *incrementally*: rename either
inserts an instruction into :attr:`ready` (operands available) or
registers it on its producers' wakeup lists; writeback promotes exactly
the consumers whose last producer completed; squash recovery filters the
indexes by the squashed window.  :meth:`make_issue_ready` is the single
funnel through which an instruction enters the ready set, so the
"park blocked loads on their first unknown-address store" rule lives in
one place.

Cross-stage state transitions (misprediction recovery, precise-exception
flush, squash undo) live here because more than one stage triggers them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.backend.functional_units import FunctionalUnitPool
from repro.backend.lsq import LoadStoreQueue
from repro.backend.ros import ROSEntry, ReorderStructure
from repro.core import make_release_policy
from repro.engine.events import CompletionQueue, ReadySet, WakeupIndex
from repro.core.release_policy import PolicyOptions, ReleasePolicy
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.fetch import FetchedOp, FetchUnit
from repro.frontend.gshare import GsharePredictor
from repro.isa import RegClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.stats import RegisterFileStats, SimStats
from repro.rename.checkpoints import CheckpointStack
from repro.rename.iomt import InOrderMapTable
from repro.rename.map_table import MapTable
from repro.rename.register_file import PhysicalRegisterFile
from repro.trace.records import Trace
from repro.trace.wrongpath import WrongPathGenerator

#: Dispatch stall reason labels used in :attr:`SimStats.dispatch_stalls`.
STALL_ROS_FULL = "ros_full"
STALL_LSQ_FULL = "lsq_full"
STALL_CHECKPOINTS_FULL = "checkpoints_full"
STALL_NO_FREE_INT = "no_free_int_register"
STALL_NO_FREE_FP = "no_free_fp_register"


class MachineState:
    """All mutable state of one simulated processor (paper Table 2)."""

    def __init__(self, trace: Trace, config: Optional[ProcessorConfig] = None) -> None:
        self.trace = trace
        self.config = config or ProcessorConfig()
        cfg = self.config

        # ------------------------------------------------------------ memory & front end
        self.memory = MemoryHierarchy(cfg.memory)
        self.predictor = GsharePredictor(history_bits=cfg.gshare_history_bits)
        self.btb = BranchTargetBuffer(entries=cfg.btb_entries,
                                      associativity=cfg.btb_associativity)
        wrongpath = (WrongPathGenerator.for_trace(trace, seed=cfg.seed)
                     if cfg.enable_wrong_path else None)
        self.fetch_unit = FetchUnit(
            trace, self.predictor, self.btb, self.memory, wrongpath,
            fetch_width=cfg.fetch_width,
            max_taken_per_cycle=cfg.max_taken_branches_per_cycle)

        # ------------------------------------------------------------ rename substrate
        self.register_files: Dict[RegClass, PhysicalRegisterFile] = {
            RegClass.INT: PhysicalRegisterFile(RegClass.INT, cfg.num_physical_int,
                                               cfg.num_logical_int),
            RegClass.FP: PhysicalRegisterFile(RegClass.FP, cfg.num_physical_fp,
                                              cfg.num_logical_fp),
        }
        self.map_tables: Dict[RegClass, MapTable] = {
            rc: MapTable(rf.num_logical, range(rf.num_logical))
            for rc, rf in self.register_files.items()
        }
        self.iomts: Dict[RegClass, InOrderMapTable] = {
            rc: InOrderMapTable(rf.num_logical, range(rf.num_logical))
            for rc, rf in self.register_files.items()
        }
        self.checkpoints = CheckpointStack(capacity=cfg.max_pending_branches)

        options = PolicyOptions(reuse_on_committed_lu=cfg.reuse_on_committed_lu)
        self.policies: Dict[RegClass, ReleasePolicy] = {
            rc: make_release_policy(cfg.release_policy, rc, self.register_files[rc],
                                    self.map_tables[rc], self.iomts[rc], self,
                                    options=options)
            for rc in (RegClass.INT, RegClass.FP)
        }
        #: the same two policies as a tuple: the per-commit/per-rename hooks
        #: iterate this instead of rebuilding a dict values view each entry.
        self.policy_list: Tuple[ReleasePolicy, ...] = tuple(self.policies.values())

        # ------------------------------------------------------------ back end
        self.ros = ReorderStructure(capacity=cfg.ros_size)
        self.lsq = LoadStoreQueue(capacity=cfg.lsq_size)
        self.fus = FunctionalUnitPool(cfg.functional_units)

        # ------------------------------------------------------------ pipeline state
        self.cycle = 0
        self.seq = 0
        self.committed_watermark = -1
        #: front-end pipe: (cycle the op becomes available to rename, op).
        self.decode_queue: Deque[Tuple[int, FetchedOp]] = deque()
        #: front-end pipe bound: fetch-to-rename latency at full width plus
        #: two groups of slack (config-derived constant, read every cycle).
        self.decode_capacity = (cfg.frontend_stages + 2) * cfg.fetch_width
        #: completion events, indexed by cycle (next-writeback in O(1)).
        self.completions = CompletionQueue()
        #: producer -> consumer wakeup lists.
        self.consumers = WakeupIndex()
        #: age-ordered queue of issue-ready instructions.
        self.ready = ReadySet()
        self.exception_rng = np.random.default_rng(cfg.seed + 0xE)

        # ------------------------------------------------------------ statistics
        self.stats = SimStats(benchmark=trace.name, release_policy=cfg.release_policy)
        self.stats.dispatch_stalls = {
            STALL_ROS_FULL: 0, STALL_LSQ_FULL: 0, STALL_CHECKPOINTS_FULL: 0,
            STALL_NO_FREE_INT: 0, STALL_NO_FREE_FP: 0,
        }
        self.last_commit_cycle = 0

        if cfg.warmup:
            self._warm_state()

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True when every fetched instruction has drained from the pipeline."""
        return (self.fetch_unit.trace_exhausted and not self.decode_queue
                and self.ros.is_empty)

    # ------------------------------------------------------------------
    def _warm_state(self) -> None:
        """Bring caches, BTB and branch predictor to steady state.

        The paper measures multi-hundred-million-instruction runs, so its
        structures are warm for essentially the whole measurement.  The
        scaled-down traces used here would otherwise be dominated by cold
        misses and predictor training; one functional pass (no timing) over
        a *different* segment of the same benchmark removes that artefact.

        The warm-up segment is generated from the same benchmark profile
        with a different seed, so the predictor learns the benchmark's
        static branch sites and statistical behaviour but cannot memorise
        the exact dynamic outcome sequence it will be measured on.  When the
        trace does not come from the workload registry (hand-built test
        traces), the trace itself is used.  Statistics are reset afterwards
        so reported rates cover only the measured run.
        """
        warmup_trace = self._build_warmup_trace()
        memory = self.memory
        predictor = self.predictor
        btb = self.btb
        for inst in warmup_trace:
            memory.instruction_access(inst.pc)
            if inst.is_mem:
                if inst.is_store:
                    memory.data_write(inst.mem_addr)
                else:
                    memory.data_read(inst.mem_addr)
            if inst.is_branch:
                record = predictor.predict(inst.pc)
                predictor.resolve(record, inst.taken)
                if inst.taken:
                    btb.update(inst.pc, inst.target)
        memory.reset_statistics()
        btb.reset_statistics()
        predictor.reset_statistics()

    def _build_warmup_trace(self) -> Trace:
        """Return the instruction sequence used for warm-up (see :meth:`_warm_state`)."""
        from repro.trace.workloads import WORKLOADS, get_workload

        profile = WORKLOADS.get(self.trace.name)
        if profile is None:
            return self.trace
        length = min(len(self.trace), 20_000)
        # get_workload caches, so repeated simulations of the same benchmark
        # (different policies / register sizes) reuse the warm-up segment.
        return get_workload(self.trace.name, length, seed=self.trace.seed + 7919)

    # ==================================================================
    # PipelineView protocol (used by the release policies)
    # ==================================================================
    def is_committed(self, seq: int) -> bool:
        """In-order commit watermark test (the paper's LUs Table C bit)."""
        return seq <= self.committed_watermark

    def has_pending_branch_younger_than(self, seq: int) -> bool:
        """True when an unresolved branch younger than ``seq`` is in flight."""
        return self.checkpoints.has_pending_younger_than(seq)

    def count_pending_branches(self) -> int:
        """Number of unresolved branches (Release Queue TAIL level)."""
        return self.checkpoints.count_pending()

    def ros_entry(self, seq: int) -> Optional[ROSEntry]:
        """In-flight ROS entry with sequence number ``seq``."""
        return self.ros.find(seq)

    def current_cycle(self) -> int:
        """Current simulation cycle."""
        return self.cycle

    # ==================================================================
    # Scheduler index maintenance
    # ==================================================================
    def make_issue_ready(self, entry: ROSEntry) -> None:
        """All source operands of ``entry`` are available: queue it for issue.

        Loads additionally obey the paper's memory-ordering rule ("loads
        are executed when all previous store addresses are known"): a load
        with an older unknown-address store parks on that store's LSQ wait
        list instead, and re-enters here when the store issues.
        """
        if entry.inst.is_load and self.lsq.park_blocked_load(entry.seq, entry):
            return
        self.ready.add(entry)

    # ==================================================================
    # Cross-stage state transitions
    # ==================================================================
    def exception_flush(self, excepting: ROSEntry) -> None:
        """Precise-exception recovery: flush, rebuild the map from the IOMT."""
        squashed = self.ros.squash_all()
        self.undo_squashed(squashed)
        self.lsq.clear()
        self.checkpoints.clear()
        for reg_class, map_table in self.map_tables.items():
            map_table.restore_architectural(self.iomts[reg_class].snapshot())
        for policy in self.policies.values():
            policy.on_exception_flush(self.cycle)
        self.decode_queue.clear()
        if excepting.resume_cursor >= 0:
            self.fetch_unit.recover(excepting.resume_cursor)

    def recover_from_misprediction(self, branch: ROSEntry) -> None:
        """Squash younger instructions and restore checkpointed state."""
        squashed = self.ros.squash_younger_than(branch.seq)
        self.undo_squashed(squashed)
        self.lsq.squash_younger_than(branch.seq)

        # Conditional releases scheduled by the squashed path disappear.
        for policy in self.policies.values():
            policy.on_branch_mispredicted(branch.seq)

        checkpoint = self.checkpoints.mispredict(branch.seq)
        if checkpoint is not None:
            for reg_class, snapshot in checkpoint.map_snapshots.items():
                self.map_tables[reg_class].restore(snapshot)
            for reg_class, snapshot in checkpoint.policy_snapshots.items():
                self.policies[reg_class].restore_state(snapshot)

        self.decode_queue.clear()
        if branch.resume_cursor >= 0:
            self.fetch_unit.recover(branch.resume_cursor)

    def undo_squashed(self, squashed: List[ROSEntry]) -> None:
        """Free resources of squashed entries (called youngest first)."""
        for entry in squashed:
            entry.squashed = True
            self.stats.squashed_instructions += 1
            if entry.has_dest and entry.allocated_new:
                self.register_files[entry.dest_class].release(entry.pd, self.cycle)
            elif entry.has_dest and entry.reused:
                # The reused register's value is still the committed one.
                self.register_files[entry.dest_class].set_producer(entry.pd, None)
            for policy in self.policies.values():
                policy.on_squash(entry, self.cycle)
            self.consumers.drop(entry.seq)
            self.ready.discard(entry.seq)

    # ==================================================================
    # Statistics collection
    # ==================================================================
    def collect_stats(self) -> SimStats:
        """Close the books and return the aggregate :class:`SimStats`."""
        stats = self.stats
        stats.cycles = self.cycle
        stats.btb_hit_rate = self.btb.hit_rate
        stats.l1i_miss_rate = self.memory.l1i.miss_rate
        stats.l1d_miss_rate = self.memory.l1d.miss_rate
        stats.l2_miss_rate = self.memory.l2.miss_rate
        stats.forwarded_loads = self.lsq.forwarded_loads
        stats.structural_stalls = self.fus.structural_stalls

        for reg_class, label in ((RegClass.INT, "int"), (RegClass.FP, "fp")):
            register_file = self.register_files[reg_class]
            policy = self.policies[reg_class]
            totals = register_file.finalize_occupancy(self.cycle)
            file_stats = RegisterFileStats(
                num_physical=register_file.num_physical,
                allocations=register_file.allocations,
                releases=register_file.releases,
                early_releases=register_file.early_releases,
                register_reuses=policy.register_reuses,
                immediate_releases=policy.immediate_releases,
                scheduled_early_releases=policy.early_releases_scheduled,
                conventional_releases=policy.conventional_releases,
                conditional_schedulings=getattr(policy, "conditional_schedulings", 0),
                occupancy=totals.averages(),
            )
            if label == "int":
                stats.int_registers = file_stats
            else:
                stats.fp_registers = file_stats
        return stats
