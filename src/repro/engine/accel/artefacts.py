"""Process-level cache of immutable compiled-export artefacts.

A sweep replays the *same trace* under many processor configurations, but
the compiled backend's export used to rebuild the trace's numpy columns
(the ``_export_trace`` inputs) from the ``Instruction`` objects for every
single point.  Those columns are pure functions of the trace, so this
module builds them once per trace and shares them — read-only — across
every configuration that replays that trace in the process.

Identity and safety:

* **Cache key** — ``(workload profile digest, trace length, seed)``.
  The profile digest comes from :func:`repro.trace.workloads.workload_digest`
  (content-addressed, so a scenario re-registered with different content
  under the same name can never be served stale columns); length and seed
  complete the trace identity exactly as the sweep-result cache does.
  Traces whose name the process's registry does not know (hand-built
  :class:`~repro.trace.records.Trace` objects) bypass the cache entirely.
* **No aliasing of mutable state** — only the immutable trace columns are
  cached.  Predictor/BTB/cache tables and Release-Queue arrays are
  allocated per ``Machine`` by ``sim_new`` for every run; two
  configurations sharing cached columns can never observe each other's
  state.  The cached arrays themselves are marked read-only
  (``writeable=False``) so an aliasing bug fails loudly instead of
  corrupting a neighbouring run.
* **Defence against name collisions** — the cache remembers which trace
  object produced an entry; serving a *different* object under the same
  key first spot-checks a few instructions against the cached columns and
  rebuilds on any mismatch (a hand-built trace reusing a registry
  workload's name, length and seed cannot be served the registry's
  columns).

Hit/miss counters aggregate into ``SweepResult`` (see
``repro/analysis/sweep.py``) so bench snapshots can prove the
amortisation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

import numpy as np

__all__ = ["ExportArtefactCache", "EXPORT_CACHE",
           "build_trace_columns", "build_warmup_columns",
           "TRACE_COLUMN_NAMES", "WARMUP_COLUMN_NAMES"]

TraceColumns = Dict[str, "np.ndarray"]

#: Measured-trace export columns (everything rename/fetch consumes).
TRACE_COLUMN_NAMES = ("op", "pc", "dc", "dest", "nsrc", "src_class",
                      "src_log", "taken", "target", "addr")

#: Warm-up replay columns (the predictor/BTB/memory models only).
WARMUP_COLUMN_NAMES = ("op", "pc", "addr", "taken", "target")


def _freeze(columns: TraceColumns) -> TraceColumns:
    for array in columns.values():
        array.setflags(write=False)
    return columns


def build_trace_columns(instructions) -> TraceColumns:
    """Build the full measured-trace export columns (read-only)."""
    n = len(instructions)
    op = np.empty(n, dtype=np.int64)
    pc = np.empty(n, dtype=np.int64)
    dc = np.empty(n, dtype=np.int64)
    dest = np.empty(n, dtype=np.int64)
    nsrc = np.empty(n, dtype=np.int64)
    src_class = np.zeros(3 * n, dtype=np.int64)
    src_log = np.zeros(3 * n, dtype=np.int64)
    taken = np.empty(n, dtype=np.int64)
    target = np.empty(n, dtype=np.int64)
    addr = np.empty(n, dtype=np.int64)
    for i, inst in enumerate(instructions):
        op[i] = int(inst.op)
        pc[i] = inst.pc
        if inst.dest is None:
            dc[i] = -1
            dest[i] = 0
        else:
            dc[i] = int(inst.dest[0])
            dest[i] = inst.dest[1]
        srcs = inst.srcs
        nsrc[i] = len(srcs)
        for s, (reg_class, log) in enumerate(srcs):
            src_class[3 * i + s] = int(reg_class)
            src_log[3 * i + s] = log
        taken[i] = int(inst.taken)
        target[i] = inst.target
        addr[i] = inst.mem_addr
    return _freeze({"op": op, "pc": pc, "dc": dc, "dest": dest,
                    "nsrc": nsrc, "src_class": src_class,
                    "src_log": src_log, "taken": taken, "target": target,
                    "addr": addr})


def build_warmup_columns(instructions) -> TraceColumns:
    """Build the warm-up replay columns (read-only)."""
    n = len(instructions)
    op = np.empty(n, dtype=np.int64)
    pc = np.empty(n, dtype=np.int64)
    addr = np.empty(n, dtype=np.int64)
    taken = np.empty(n, dtype=np.int64)
    target = np.empty(n, dtype=np.int64)
    for i, inst in enumerate(instructions):
        op[i] = int(inst.op)
        pc[i] = inst.pc
        addr[i] = inst.mem_addr
        taken[i] = int(inst.taken)
        target[i] = inst.target
    return _freeze({"op": op, "pc": pc, "addr": addr, "taken": taken,
                    "target": target})


def _trace_key(trace) -> Optional[Tuple[str, int, int]]:
    """Content-addressed identity, or ``None`` for unregistered traces."""
    from repro.trace.workloads import workload_digest

    try:
        digest = workload_digest(trace.name)
    except KeyError:
        return None
    return (digest, len(trace.instructions), trace.seed)


def _spot_check(instructions, columns: TraceColumns) -> bool:
    """Cheap consistency probe: do these columns describe this trace?"""
    n = len(instructions)
    if len(columns["op"]) != n:
        return False
    for i in {0, n // 2, n - 1} if n else set():
        inst = instructions[i]
        if (columns["op"][i] != int(inst.op)
                or columns["pc"][i] != inst.pc
                or columns["addr"][i] != inst.mem_addr
                or columns["taken"][i] != int(inst.taken)
                or columns["target"][i] != inst.target):
            return False
    return True


class ExportArtefactCache:
    """LRU cache of per-trace export columns, with hit/miss counters."""

    def __init__(self, max_entries: int = 8) -> None:
        self.max_entries = max_entries
        #: key -> (source trace, columns); the trace reference enables the
        #: identity fast path (get_workload memoises Trace objects, so the
        #: common case is `is`) and pins nothing new — the workload layer
        #: already caches the same traces.
        self._full: "OrderedDict" = OrderedDict()
        self._warm: "OrderedDict" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def trace_columns(self, trace) -> TraceColumns:
        """The measured-trace columns for ``trace`` (cached, read-only)."""
        return self._get(self._full, trace, build_trace_columns)

    def warmup_columns(self, trace) -> TraceColumns:
        """The warm-up replay columns for ``trace`` (cached, read-only)."""
        return self._get(self._warm, trace, build_warmup_columns)

    def _get(self, store: "OrderedDict", trace,
             builder: Callable) -> TraceColumns:
        key = _trace_key(trace)
        if key is None:
            with self._lock:
                self.misses += 1
            return builder(trace.instructions)
        with self._lock:
            entry = store.get(key)
            if entry is not None:
                cached_trace, columns = entry
                if cached_trace is trace or _spot_check(trace.instructions,
                                                        columns):
                    store.move_to_end(key)
                    self.hits += 1
                    return columns
                del store[key]      # same key, different content: rebuild
            self.misses += 1
        columns = builder(trace.instructions)
        with self._lock:
            store[key] = (trace, columns)
            store.move_to_end(key)
            while len(store) > self.max_entries:
                store.popitem(last=False)
        return columns

    # ------------------------------------------------------------------
    def counters(self) -> Tuple[int, int]:
        """``(hits, misses)`` since construction / the last clear."""
        with self._lock:
            return (self.hits, self.misses)

    def clear(self) -> None:
        """Drop every entry and zero the counters (test hook)."""
        with self._lock:
            self._full.clear()
            self._warm.clear()
            self.hits = 0
            self.misses = 0


#: The process-wide cache every compiled export goes through.
EXPORT_CACHE = ExportArtefactCache()
