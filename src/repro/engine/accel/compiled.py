"""Drive one simulation through the compiled core, bit-identically.

:func:`run_compiled` takes a fully constructed
:class:`~repro.engine.state.MachineState`, exports it into a C
``Machine`` built by :mod:`repro.engine.accel.loader`, lets ``sim_run``
execute the whole pipeline, and assembles the resulting counters into the
same :class:`~repro.pipeline.stats.SimStats` the Python engine's
``collect_stats`` would produce.

Warm-up runs inside the compiled invocation: a state constructed with
``warmup=True`` for the compiled backend defers its Python warm-up pass
(``state.warmup_pending``), and ``run_compiled`` instead exports the
warm-up trace's columns and lets ``sim_run`` replay them through the C
predictor/BTB/cache models before the first measured cycle — the exact
port of ``MachineState._warm_state``, bit-identical by the equivalence
suite.  A state that was warmed in Python (``warmup_pending`` false)
exports the already-warm structures with a zero-length warm-up, which is
equally exact.

The immutable trace columns are served by the process-level
:data:`~repro.engine.accel.artefacts.EXPORT_CACHE`, so a sweep replaying
one trace under many configurations builds the columns once; all mutable
machine state is allocated per run by ``sim_new``.

The only Python work during the run is *refilling draw buffers*: the C
core never calls back into Python, so the two stochastic inputs — the
wrong-path instruction stream and the per-rename exception lottery — are
pre-drawn into flat buffers.  ``sim_run`` escapes with
``RUN_NEED_WRONGPATH`` / ``RUN_NEED_EXC`` *before* starting any cycle
that could exhaust a buffer, Python tops the buffer up from deep copies
of the state's own generators (so a later pure-Python fallback run still
observes untouched RNG streams), and re-enters.

Wrong-path payloads are exported pc-agnostically: the generator is asked
for the instruction at ``pc=0``, whose branch target then *is*
``4 * delta`` — the C core stamps the real (front-end dependent) pc back
in, exactly like the generator's own vectorised pre-draw path.

``run_compiled`` returns ``None`` whenever the run must be redone by the
Python engine: configurations the C core does not model, a deadlock
(so the Python engine raises its own ``DeadlockError``), or an internal
self-check failure inside the core (logged — this is the divergence
fallback of the accelerated backend's contract).
"""

from __future__ import annotations

import copy
import logging
from typing import NamedTuple, Optional, TYPE_CHECKING

import numpy as np

from repro.engine.accel import loader
from repro.engine.accel.artefacts import EXPORT_CACHE
from repro.engine.accel.loader import (A, CFG, NCFG, RF, RQ_LEVELS_MAX,
                                       RUN_DEADLOCK, RUN_FINISHED,
                                       RUN_INTERNAL, RUN_NEED_EXC,
                                       RUN_NEED_WRONGPATH, SC, ST, ST_N)
from repro.isa import FUKind, OpClass
from repro.pipeline.stats import RegisterFileStats, SimStats
from repro.core.register_state import OccupancyTotals

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.state import MachineState

logger = logging.getLogger("repro.engine.accel")

#: Wrong-path payload buffer capacity.  Consumed one per wrong-path fetch;
#: a refill escape costs one ``sim_run`` re-entry plus this many generator
#: draws, so the value trades refill frequency against the up-front fill
#: every run pays (the escape check fires before the first cycle).
WP_BUFFER = 1024

#: Exception-lottery buffer capacity (one double per renamed correct-path
#: instruction; refills are a single batched ``Generator.random`` call).
EXC_BUFFER = 4096

_POLICY_CODES = {"conv": 0, "conventional": 0, "basic": 1, "extended": 2}

_FU_KINDS = tuple(FUKind)          # 6 pools, enum order == C pool order
_OP_CLASSES = tuple(OpClass)       # 11 classes, enum order == C op order


class CompiledRun(NamedTuple):
    """Result of a successful compiled run."""

    stats: SimStats
    #: peak size of the ready set (the Python engine exposes this as
    #: ``state.ready.peak_size``; the bench probe records it).
    ready_peak: int


# ----------------------------------------------------------------------
# Export-support probe
# ----------------------------------------------------------------------
def unsupported_reason(config_or_state) -> Optional[str]:
    """Why this configuration cannot run on the compiled core (None = can).

    Accepts a :class:`~repro.pipeline.config.ProcessorConfig` or anything
    carrying one as ``.config`` (a ``MachineState``).  The C core sizes
    its Release Queue from the config but caps the depth at
    ``RQ_LEVELS_MAX``, and models exactly the paper's six-pool /
    eleven-class functional units; configurations outside that envelope
    quietly use the Python engine.
    """
    cfg = getattr(config_or_state, "config", config_or_state)
    if (_POLICY_CODES.get(cfg.release_policy) == 2
            and cfg.max_pending_branches > RQ_LEVELS_MAX):
        return (f"extended policy needs max_pending_branches <= "
                f"{RQ_LEVELS_MAX} (got {cfg.max_pending_branches})")
    counts = cfg.functional_units.counts
    latencies = cfg.functional_units.latencies
    if any(kind not in _FU_KINDS for kind in counts):
        return "functional-unit pool outside the six-pool model"
    if any(op not in latencies for op in _OP_CLASSES):
        return "incomplete functional-unit latency table"
    return None


# ----------------------------------------------------------------------
# Config vector
# ----------------------------------------------------------------------
def _config_vector(state: "MachineState", warm_len: int) -> "np.ndarray":
    cfg = state.config
    mem = cfg.memory
    fus = cfg.functional_units
    vec = np.zeros(NCFG, dtype=np.int64)
    vec[CFG.TRACE_LEN] = len(state.trace.instructions)
    vec[CFG.FETCH_W] = cfg.fetch_width
    vec[CFG.RENAME_W] = cfg.rename_width
    vec[CFG.ISSUE_W] = cfg.issue_width
    vec[CFG.COMMIT_W] = cfg.commit_width
    vec[CFG.MAX_TAKEN] = cfg.max_taken_branches_per_cycle
    vec[CFG.FRONTEND] = cfg.frontend_stages
    vec[CFG.ROS] = cfg.ros_size
    vec[CFG.LSQ] = cfg.lsq_size
    vec[CFG.CK_CAP] = cfg.max_pending_branches
    vec[CFG.NPHYS_INT] = cfg.num_physical_int
    vec[CFG.NPHYS_FP] = cfg.num_physical_fp
    vec[CFG.NLOG_INT] = cfg.num_logical_int
    vec[CFG.NLOG_FP] = cfg.num_logical_fp
    vec[CFG.GSHARE_BITS] = cfg.gshare_history_bits
    vec[CFG.BTB_SETS] = cfg.btb_entries // cfg.btb_associativity
    vec[CFG.BTB_ASSOC] = cfg.btb_associativity
    vec[CFG.POLICY] = _POLICY_CODES[cfg.release_policy]
    vec[CFG.REUSE] = int(cfg.reuse_on_committed_lu)
    vec[CFG.WP_ENABLED] = int(cfg.enable_wrong_path)
    vec[CFG.EXC_ENABLED] = int(cfg.exception_rate > 0.0)
    for base, level in ((CFG.L1I_SETS, mem.l1i), (CFG.L1D_SETS, mem.l1d),
                        (CFG.L2_SETS, mem.l2)):
        vec[base + 0] = level.n_sets
        vec[base + 1] = level.associativity
        vec[base + 2] = level.line_bytes.bit_length() - 1
        vec[base + 3] = level.hit_latency
    vec[CFG.MEM_LAT] = mem.main_memory_latency
    for k, kind in enumerate(_FU_KINDS):
        vec[CFG.FU + 2 * k] = fus.counts.get(kind, 0)
        vec[CFG.FU + 2 * k + 1] = int(kind in fus.unpipelined)
    for op in _OP_CLASSES:
        vec[CFG.OP_LAT + int(op)] = fus.latencies[op]
    vec[CFG.WP_CAP] = WP_BUFFER
    vec[CFG.EXC_CAP] = EXC_BUFFER
    vec[CFG.WARM_LEN] = warm_len
    return vec


# ----------------------------------------------------------------------
# State export
# ----------------------------------------------------------------------
def _i64_view(ffi, lib, mach, which: int, length: int) -> "np.ndarray":
    ptr = lib.sim_i64(mach, which)
    return np.frombuffer(ffi.buffer(ptr, 8 * length), dtype=np.int64)


def _export_trace(ffi, lib, mach, trace) -> None:
    """Copy the trace's (cached, read-only) columns into the C Machine."""
    n = len(trace.instructions)
    if n == 0:
        return
    columns = EXPORT_CACHE.trace_columns(trace)
    for which, name in ((A.T_OP, "op"), (A.T_PC, "pc"), (A.T_DC, "dc"),
                        (A.T_DEST, "dest"), (A.T_NSRC, "nsrc"),
                        (A.T_TAKEN, "taken"), (A.T_TARGET, "target"),
                        (A.T_ADDR, "addr")):
        _i64_view(ffi, lib, mach, which, n)[:] = columns[name]
    _i64_view(ffi, lib, mach, A.T_SRC_CLASS, 3 * n)[:] = columns["src_class"]
    _i64_view(ffi, lib, mach, A.T_SRC_LOG, 3 * n)[:] = columns["src_log"]


def _export_warmup(ffi, lib, mach, warm_trace) -> None:
    """Copy the warm-up trace's (cached) replay columns into the Machine."""
    n = len(warm_trace.instructions)
    if n == 0:
        return
    columns = EXPORT_CACHE.warmup_columns(warm_trace)
    for which, name in ((A.WU_OP, "op"), (A.WU_PC, "pc"),
                        (A.WU_ADDR, "addr"), (A.WU_TAKEN, "taken"),
                        (A.WU_TARGET, "target")):
        _i64_view(ffi, lib, mach, which, n)[:] = columns[name]


def _export_predictor(ffi, lib, mach, predictor) -> None:
    table = np.frombuffer(ffi.buffer(lib.sim_i8(mach, 0),
                                     predictor.table_size), dtype=np.int8)
    table[:] = np.frombuffer(predictor.table, dtype=np.int8)
    lib.sim_set(mach, SC.GS_HISTORY, predictor.history)


def _export_btb(ffi, lib, mach, btb) -> None:
    assoc = btb.associativity
    n_sets = btb.n_sets
    tag = _i64_view(ffi, lib, mach, A.B_TAG, n_sets * assoc)
    target = _i64_view(ffi, lib, mach, A.B_TARGET, n_sets * assoc)
    nway = _i64_view(ffi, lib, mach, A.B_NWAY, n_sets)
    for index, ways in enumerate(btb._sets):
        if not ways:
            continue
        nway[index] = len(ways)
        base = index * assoc
        for pos, (entry_tag, entry_target) in enumerate(ways):
            tag[base + pos] = entry_tag
            target[base + pos] = entry_target


def _export_cache(ffi, lib, mach, cache, which_tag: int) -> None:
    assoc = cache.config.associativity
    n_sets = cache._n_sets
    tag = _i64_view(ffi, lib, mach, which_tag, n_sets * assoc)
    dirty = _i64_view(ffi, lib, mach, which_tag + 1, n_sets * assoc)
    nway = _i64_view(ffi, lib, mach, which_tag + 2, n_sets)
    for index, ways in cache._sets.items():
        if not ways:
            continue
        nway[index] = len(ways)
        base = index * assoc
        for pos, (entry_tag, entry_dirty) in enumerate(ways):
            tag[base + pos] = entry_tag
            dirty[base + pos] = entry_dirty


# ----------------------------------------------------------------------
# Draw-buffer refills
# ----------------------------------------------------------------------
def _payload_columns(ffi, lib, mach, cap: int):
    return {which: _i64_view(ffi, lib, mach, which, 2 * cap
                             if which in (A.W_SRC_CLASS, A.W_SRC_LOG)
                             else cap)
            for which in (A.W_OP, A.W_DC, A.W_DEST, A.W_NSRC,
                          A.W_SRC_CLASS, A.W_SRC_LOG, A.W_ADDR, A.W_TDELTA)}


def _fill_wrongpath(columns, generator, start: int, stop: int) -> None:
    """Draw payloads ``[start, stop)`` from the wrong-path generator.

    ``pc=0`` makes the drawn branch target equal ``4 * delta``, so the
    exported ``tdelta`` is pc-independent and the C core can stamp the
    real pc in at fetch time (matching the Python front end exactly).
    """
    w_op, w_dc = columns[A.W_OP], columns[A.W_DC]
    w_dest, w_nsrc = columns[A.W_DEST], columns[A.W_NSRC]
    w_src_class, w_src_log = columns[A.W_SRC_CLASS], columns[A.W_SRC_LOG]
    w_addr, w_tdelta = columns[A.W_ADDR], columns[A.W_TDELTA]
    next_instruction = generator.next_instruction
    for i in range(start, stop):
        inst = next_instruction(0)
        w_op[i] = int(inst.op)
        if inst.dest is None:
            w_dc[i] = -1
            w_dest[i] = 0
        else:
            w_dc[i] = int(inst.dest[0])
            w_dest[i] = inst.dest[1]
        srcs = inst.srcs
        w_nsrc[i] = len(srcs)
        for s, (reg_class, log) in enumerate(srcs):
            w_src_class[2 * i + s] = int(reg_class)
            w_src_log[2 * i + s] = log
        w_addr[i] = inst.mem_addr
        w_tdelta[i] = inst.target >> 2 if inst.is_branch else 0


def _refill_wrongpath(lib, mach, columns, generator, cap: int) -> None:
    head = lib.sim_get(mach, SC.WP_HEAD)
    count = lib.sim_get(mach, SC.WP_COUNT)
    remaining = count - head
    if remaining > 0 and head > 0:
        for column in columns.values():
            stride = 2 if len(column) == 2 * cap else 1
            keep = column[stride * head:stride * count].copy()
            column[:stride * remaining] = keep
    _fill_wrongpath(columns, generator, remaining, cap)
    lib.sim_set(mach, SC.WP_HEAD, 0)
    lib.sim_set(mach, SC.WP_COUNT, cap)


def _refill_exceptions(ffi, lib, mach, rng, cap: int) -> None:
    buf = np.frombuffer(ffi.buffer(lib.sim_f64(mach, 0), 8 * cap),
                        dtype=np.float64)
    head = lib.sim_get(mach, SC.EXC_HEAD)
    count = lib.sim_get(mach, SC.EXC_COUNT)
    remaining = count - head
    if remaining > 0 and head > 0:
        buf[:remaining] = buf[head:count].copy()
    buf[remaining:cap] = rng.random(cap - remaining)
    lib.sim_set(mach, SC.EXC_HEAD, 0)
    lib.sim_set(mach, SC.EXC_COUNT, cap)


# ----------------------------------------------------------------------
# Stats assembly
# ----------------------------------------------------------------------
def _hit_rate(hits: int, misses: int) -> float:
    total = hits + misses
    return 1.0 if total == 0 else hits / total


def _miss_rate(hits: int, misses: int) -> float:
    total = hits + misses
    return 0.0 if total == 0 else misses / total


def _register_file_stats(st: "np.ndarray", base: int, num_physical: int,
                         cycles: int) -> RegisterFileStats:
    rf = st[base:base + 11]
    totals = OccupancyTotals(cycles=cycles,
                             empty=float(rf[RF.OCC_EMPTY]),
                             ready=float(rf[RF.OCC_READY]),
                             idle=float(rf[RF.OCC_IDLE]))
    return RegisterFileStats(
        num_physical=num_physical,
        allocations=int(rf[RF.ALLOCS]),
        releases=int(rf[RF.RELEASES]),
        early_releases=int(rf[RF.EARLY]),
        register_reuses=int(rf[RF.REUSES]),
        immediate_releases=int(rf[RF.IMMEDIATE]),
        scheduled_early_releases=int(rf[RF.SCHED_EARLY]),
        conventional_releases=int(rf[RF.CONVENTIONAL]),
        conditional_schedulings=int(rf[RF.CONDITIONAL]),
        occupancy=totals.averages(),
    )


def _assemble_stats(state: "MachineState", st: "np.ndarray",
                    cycles: int) -> SimStats:
    cfg = state.config
    stats = SimStats(benchmark=state.trace.name,
                     release_policy=cfg.release_policy)
    stats.cycles = cycles
    stats.committed_instructions = int(st[ST.COMMITTED])
    stats.committed_by_class = {
        op.name: int(st[ST.BY_CLASS + int(op)])
        for op in _OP_CLASSES if st[ST.BY_CLASS + int(op)]
    }
    stats.fetched_instructions = int(st[ST.FETCHED])
    stats.fetched_wrong_path = int(st[ST.FETCHED_WP])
    stats.renamed_instructions = int(st[ST.RENAMED])
    stats.squashed_instructions = int(st[ST.SQUASHED])
    stats.exceptions_taken = int(st[ST.EXCEPTIONS])
    stats.branches_resolved = int(st[ST.BR_RESOLVED])
    stats.branch_mispredictions = int(st[ST.BR_MISPRED])
    stats.btb_hit_rate = _hit_rate(int(st[ST.BTB_HITS]),
                                   int(st[ST.BTB_MISSES]))
    stats.l1i_miss_rate = _miss_rate(int(st[ST.L1I_HITS]),
                                     int(st[ST.L1I_MISSES]))
    stats.l1d_miss_rate = _miss_rate(int(st[ST.L1D_HITS]),
                                     int(st[ST.L1D_MISSES]))
    stats.l2_miss_rate = _miss_rate(int(st[ST.L2_HITS]),
                                    int(st[ST.L2_MISSES]))
    stats.forwarded_loads = int(st[ST.FORWARDED])
    stats.dispatch_stalls = {
        "ros_full": int(st[ST.STALL_ROS]),
        "lsq_full": int(st[ST.STALL_LSQ]),
        "checkpoints_full": int(st[ST.STALL_CK]),
        "no_free_int_register": int(st[ST.STALL_INT]),
        "no_free_fp_register": int(st[ST.STALL_FP]),
    }
    stats.structural_stalls = int(st[ST.STRUCTURAL])
    stats.int_registers = _register_file_stats(st, ST.RF_INT,
                                               cfg.num_physical_int, cycles)
    stats.fp_registers = _register_file_stats(st, ST.RF_FP,
                                              cfg.num_physical_fp, cycles)
    return stats


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_compiled(state: "MachineState", *,
                 max_instructions: Optional[int] = None,
                 max_cycles: Optional[int] = None,
                 deadlock_threshold: int = 50_000) -> Optional[CompiledRun]:
    """Run ``state``'s simulation on the compiled core.

    Returns a :class:`CompiledRun`, or ``None`` when the run must be
    (re)done by the Python engine.  The Python ``state`` is never
    mutated: the export copies structure contents and deep-copies the
    RNG-bearing generators, so a fallback run starts from pristine state.

    Raises :class:`~repro.engine.accel.loader.ToolchainError` when the
    core cannot be built/loaded (callers resolve that once per process).
    """
    reason = unsupported_reason(state)
    if reason is not None:
        logger.debug("compiled backend unavailable for this run: %s", reason)
        return None

    # A deferred warm-up (state constructed for the compiled backend)
    # runs inside sim_run from the exported warm-up trace; a state warmed
    # in Python instead exports its already-warm structures below and the
    # C pass is a no-op.  The Python state is left pending — a fallback
    # run warms itself via ensure_warm().
    warm_trace = (state._build_warmup_trace()
                  if getattr(state, "warmup_pending", False) else None)
    warm_len = len(warm_trace.instructions) if warm_trace is not None else 0

    ffi, lib = loader.load_core()
    vec = _config_vector(state, warm_len)
    mach = lib.sim_new(ffi.cast("long long *", ffi.from_buffer(vec)), NCFG)
    if mach == ffi.NULL:
        logger.warning("compiled core rejected the configuration vector; "
                       "falling back to the Python engine")
        return None
    mach = ffi.gc(mach, lib.sim_free)

    _export_trace(ffi, lib, mach, state.trace)
    if warm_trace is not None:
        _export_warmup(ffi, lib, mach, warm_trace)
    _export_predictor(ffi, lib, mach, state.predictor)
    _export_btb(ffi, lib, mach, state.btb)
    memory = state.memory
    _export_cache(ffi, lib, mach, memory.l1i, A.L1I_TAG)
    _export_cache(ffi, lib, mach, memory.l1d, A.L1D_TAG)
    _export_cache(ffi, lib, mach, memory.l2, A.L2_TAG)

    limit = (max_instructions if max_instructions is not None
             else len(state.trace.instructions))
    lib.sim_set(mach, SC.COMMIT_LIMIT, limit)
    lib.sim_set(mach, SC.MAX_CYCLES, -1 if max_cycles is None else max_cycles)
    lib.sim_set(mach, SC.DEADLOCK, deadlock_threshold)
    lib.sim_setf(mach, 0, state.config.exception_rate)

    # Deep copies: the compiled attempt consumes these streams; a Python
    # fallback (deadlock, internal error) must see them untouched.
    wrongpath = (copy.deepcopy(state.fetch_unit.wrongpath)
                 if state.config.enable_wrong_path
                 and state.fetch_unit.wrongpath is not None else None)
    exc_rng = (copy.deepcopy(state.exception_rng)
               if state.config.exception_rate > 0.0 else None)
    if state.config.enable_wrong_path and wrongpath is None:
        # A wrong-path-enabled config without a generator cannot occur via
        # MachineState construction; refuse rather than diverge.
        logger.warning("wrong path enabled but no generator present; "
                       "falling back to the Python engine")
        return None

    wp_columns = (_payload_columns(ffi, lib, mach, WP_BUFFER)
                  if wrongpath is not None else None)

    status = lib.sim_run(mach)
    while status in (RUN_NEED_WRONGPATH, RUN_NEED_EXC):
        if status == RUN_NEED_WRONGPATH:
            _refill_wrongpath(lib, mach, wp_columns, wrongpath, WP_BUFFER)
        else:
            _refill_exceptions(ffi, lib, mach, exc_rng, EXC_BUFFER)
        status = lib.sim_run(mach)

    if status == RUN_DEADLOCK:
        # Let the Python engine reproduce its own DeadlockError (message
        # includes live pipeline details only it can render).
        logger.debug("compiled core hit the deadlock threshold; deferring "
                     "to the Python engine")
        return None
    if status != RUN_FINISHED:
        logger.warning(
            "compiled core reported internal error %d (self-check escape); "
            "falling back to the Python engine",
            lib.sim_get(mach, SC.ERROR) if status == RUN_INTERNAL else status)
        return None

    st = _i64_view(ffi, lib, mach, A.STATS, ST_N).copy()
    cycles = int(lib.sim_get(mach, SC.CYCLE))
    ready_peak = int(lib.sim_get(mach, SC.READY_PEAK))
    return CompiledRun(stats=_assemble_stats(state, st, cycles),
                      ready_peak=ready_peak)
