"""Accelerated (compiled) engine backend: selection, self-check, fallback.

The compiled backend runs the whole per-cycle pipeline in C
(:mod:`~repro.engine.accel.loader` builds it, :mod:`~repro.engine.accel.compiled`
drives it) and is **opt-in**:

* ``ProcessorConfig.engine`` — ``"python"`` / ``"compiled"`` pins a
  backend for that configuration; the default ``"auto"`` defers to
* ``$REPRO_ENGINE`` — process-wide request (the ``--engine`` CLI flag
  sets it); anything other than ``compiled`` means the Python engine.

Requesting the compiled backend never changes results and never fails a
run: before the first compiled run in a process, a **self-check** runs
one small simulation on both backends and compares the full ``SimStats``
field-for-field.  A missing/broken toolchain or any divergence logs one
warning on the ``repro.engine.accel`` logger and pins the process to the
Python engine.  Individual runs the C core cannot model (or that hit its
deadlock/internal escapes) quietly fall back per-run.
"""

from __future__ import annotations

import contextlib
import logging
import os
from typing import Iterator, Optional

from repro.engine.accel.loader import ToolchainError, reset_loader_cache

__all__ = ["ENGINE_ENV", "ENGINE_CHOICES", "requested_backend",
           "resolve_engine_backend", "run_compiled", "ToolchainError",
           "reset_backend_cache", "backend_fallback_reason",
           "suppressed_backend_warnings"]

logger = logging.getLogger("repro.engine.accel")

#: Environment variable selecting the process-wide default backend.
ENGINE_ENV = "REPRO_ENGINE"

#: Valid values of ``ProcessorConfig.engine`` / ``--engine``.
ENGINE_CHOICES = ("auto", "python", "compiled")

#: Cached verdict of the per-process availability probe (None = not yet
#: probed; True = compiled backend loads and passes the self-check).
_COMPILED_OK: Optional[bool] = None

#: Why the probe pinned this process to the Python engine (None when the
#: probe passed or has not run).  Sweep workers report this back to the
#: parent so a pool emits one summary instead of N per-worker warnings.
_FALLBACK_REASON: Optional[str] = None

#: When True, the probe's fallback warnings are withheld (the caller —
#: the sweep layer — takes responsibility for surfacing one summary).
_WARNINGS_SUPPRESSED = False


def backend_fallback_reason() -> Optional[str]:
    """Why this process fell back to the Python engine (None = it didn't)."""
    return _FALLBACK_REASON


@contextlib.contextmanager
def suppressed_backend_warnings() -> Iterator[None]:
    """Withhold the probe's per-process fallback warnings inside the block.

    The sweep layer wraps worker execution in this so a process pool does
    not log one identical toolchain warning per worker; the reason stays
    available via :func:`backend_fallback_reason` and the sweep driver
    emits a single summary instead.
    """
    global _WARNINGS_SUPPRESSED
    previous = _WARNINGS_SUPPRESSED
    _WARNINGS_SUPPRESSED = True
    try:
        yield
    finally:
        _WARNINGS_SUPPRESSED = previous


def _warn_fallback(message: str, *args) -> None:
    global _FALLBACK_REASON
    _FALLBACK_REASON = message % args if args else message
    if not _WARNINGS_SUPPRESSED:
        logger.warning(message, *args)


def requested_backend(config=None) -> str:
    """The backend the user asked for: config field, else ``$REPRO_ENGINE``.

    Returns ``"python"`` or ``"compiled"`` (never ``"auto"``).
    """
    if config is not None:
        field = getattr(config, "engine", "auto")
        if field != "auto":
            return field
    env = os.environ.get(ENGINE_ENV, "").strip().lower()
    return "compiled" if env == "compiled" else "python"


def resolve_engine_backend(config=None) -> str:
    """The backend that will actually run: the request gated by the probe."""
    if requested_backend(config) != "compiled":
        return "python"
    return "compiled" if _compiled_available() else "python"


def reset_backend_cache() -> None:
    """Forget the availability verdict and the loaded core (test hook)."""
    global _COMPILED_OK, _FALLBACK_REASON
    _COMPILED_OK = None
    _FALLBACK_REASON = None
    reset_loader_cache()


def _compiled_available() -> bool:
    global _COMPILED_OK
    if _COMPILED_OK is None:
        _COMPILED_OK = _probe_backend()
    return _COMPILED_OK


def _probe_backend() -> bool:
    """Build the core and verify it against the Python engine, once."""
    from repro.engine.accel import loader

    try:
        loader.load_core()
    except ToolchainError as exc:
        _warn_fallback(
            "compiled engine requested but unavailable (%s); "
            "using the Python engine", exc)
        return False
    try:
        if not _self_check():
            _warn_fallback(
                "compiled engine failed the statistics self-check; "
                "using the Python engine")
            return False
    except Exception as exc:  # any probe crash must degrade, not propagate
        _warn_fallback(
            "compiled engine self-check crashed (%s); using the Python "
            "engine", exc)
        return False
    return True


def _self_check() -> bool:
    """One small run on both backends must agree field-for-field."""
    import dataclasses

    from repro.engine.accel.compiled import run_compiled
    from repro.engine.engine import SimulationEngine
    from repro.pipeline.config import ProcessorConfig
    from repro.trace.workloads import get_workload

    # Small but representative: branch-dense integer workload, tight file
    # (register stalls + reuse), exceptions on, basic policy (early
    # releases + squash cancellation), warm structures exported.
    config = ProcessorConfig(release_policy="basic", engine="python",
                             num_physical_int=48, num_physical_fp=48,
                             exception_rate=0.002, warmup=True)
    trace = get_workload("gcc", 600, seed=0)
    compiled = run_compiled(SimulationEngine(trace, config).state)
    if compiled is None:
        return False
    reference = SimulationEngine(trace, config).run()
    if dataclasses.asdict(compiled.stats) != dataclasses.asdict(reference):
        return False
    # Same point again with warm-up deferred into the C core (the
    # engine="compiled" state skips the Python warm pass), so the in-C
    # warm-up path gets the same per-process divergence gate.
    deferred = run_compiled(SimulationEngine(
        trace, dataclasses.replace(config, engine="compiled")).state)
    if deferred is None:
        return False
    return dataclasses.asdict(deferred.stats) == dataclasses.asdict(reference)


def run_compiled(state, *, max_instructions=None, max_cycles=None,
                 deadlock_threshold: int = 50_000):
    """Run ``state`` on the compiled core (see :mod:`.compiled`).

    Thin re-export that keeps the heavy imports (numpy views, cffi) out
    of backend *resolution*; returns ``None`` on any per-run fallback.
    """
    from repro.engine.accel.compiled import run_compiled as _run

    return _run(state, max_instructions=max_instructions,
                max_cycles=max_cycles,
                deadlock_threshold=deadlock_threshold)
