"""Build & load the compiled simulation core (cffi ABI mode).

The container the simulator targets ships no ahead-of-time Python
compiler (no numba, no Cython, no mypyc), but it does ship a system C
compiler and :mod:`cffi`.  The accelerated backend therefore compiles
``core.c`` — a whole-machine C port of the per-cycle engine — into a
shared library with the system compiler and talks to it through cffi's
ABI mode (``ffi.dlopen``), which needs no ``Python.h`` and no build-time
extension machinery.

Build products are cached by content digest in
``$REPRO_ACCEL_CACHE`` (default ``~/.cache/repro/accel``); a source or
compiler change produces a new file name, so stale binaries can never be
loaded.  ``$REPRO_ACCEL_CC`` overrides the compiler invocation (the
toolchain-failure tests point it at a nonexistent binary) and
``$REPRO_ACCEL_CFLAGS`` appends extra flags after the defaults (the
sanitizer CI job builds with ``-O1 -fsanitize=address,undefined``).

Every failure mode — missing cffi, missing/broken compiler, dlopen
failure, ABI mismatch — raises :class:`ToolchainError`; the backend
resolution in :mod:`repro.engine.accel` turns that into a logged
fallback to the pure-Python engine.
"""

from __future__ import annotations

import hashlib
import os
import shlex
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Tuple

__all__ = ["ToolchainError", "load_core", "reset_loader_cache",
           "CFG", "SC", "A", "ST", "RF", "NCFG", "ST_N", "RQ_LEVELS_MAX",
           "ABI_MAGIC", "RUN_FINISHED", "RUN_NEED_WRONGPATH",
           "RUN_NEED_EXC", "RUN_DEADLOCK", "RUN_INTERNAL"]


class ToolchainError(RuntimeError):
    """The compiled backend cannot be built or loaded on this machine."""


_SOURCE_PATH = Path(__file__).with_name("core.c")

#: Environment variable overriding the build cache directory.
CACHE_DIR_ENV = "REPRO_ACCEL_CACHE"

#: Environment variable overriding the compiler command line (shlex-split;
#: ``-O2 -shared -fPIC -o <out> <src>`` is appended).
CC_ENV = "REPRO_ACCEL_CC"

#: Environment variable appending extra compiler flags (shlex-split) after
#: the defaults, so e.g. ``-O1 -fsanitize=address,undefined`` overrides
#: ``-O2`` — the sanitizer CI job uses this.  Folded into the build
#: digest: flipping the flags produces a different cached ``.so``.
CFLAGS_ENV = "REPRO_ACCEL_CFLAGS"

_DEFAULT_CC = "cc"
_CC_FALLBACKS = ("cc", "gcc", "clang")


# ----------------------------------------------------------------------
# Constant mirrors of the enums in core.c.  Kept as simple namespaces so
# the exporter reads like the C it drives; the ABI magic check below
# guards against the two sides drifting apart.
# ----------------------------------------------------------------------
class _Namespace:
    def __init__(self, **values: int) -> None:
        self.__dict__.update(values)


#: Config vector layout (enum ``CFG_*`` in core.c).
CFG = _Namespace(
    TRACE_LEN=0, FETCH_W=1, RENAME_W=2, ISSUE_W=3, COMMIT_W=4,
    MAX_TAKEN=5, FRONTEND=6, ROS=7, LSQ=8, CK_CAP=9,
    NPHYS_INT=10, NPHYS_FP=11, NLOG_INT=12, NLOG_FP=13,
    GSHARE_BITS=14, BTB_SETS=15, BTB_ASSOC=16,
    POLICY=17, REUSE=18, WP_ENABLED=19, EXC_ENABLED=20,
    L1I_SETS=21, L1I_ASSOC=22, L1I_SHIFT=23, L1I_LAT=24,
    L1D_SETS=25, L1D_ASSOC=26, L1D_SHIFT=27, L1D_LAT=28,
    L2_SETS=29, L2_ASSOC=30, L2_SHIFT=31, L2_LAT=32,
    MEM_LAT=33, FU=34, OP_LAT=46, WP_CAP=57, EXC_CAP=58, WARM_LEN=59,
)
NCFG = 60

#: Scalar ids (enum ``SC_*``).
SC = _Namespace(
    STATUS=0, ERROR=1, CYCLE=2, MAX_CYCLES=3, COMMIT_LIMIT=4,
    DEADLOCK=5, WP_COUNT=6, WP_HEAD=7, EXC_COUNT=8, EXC_HEAD=9,
    GS_HISTORY=10, READY_PEAK=11, SEQ=12, ABI_MAGIC=13,
)

#: Array ids (enum ``A_*``).
A = _Namespace(
    T_OP=0, T_PC=1, T_DC=2, T_DEST=3, T_NSRC=4, T_SRC_CLASS=5,
    T_SRC_LOG=6, T_TAKEN=7, T_TARGET=8, T_ADDR=9,
    W_OP=10, W_DC=11, W_DEST=12, W_NSRC=13, W_SRC_CLASS=14,
    W_SRC_LOG=15, W_ADDR=16, W_TDELTA=17,
    B_TAG=18, B_TARGET=19, B_NWAY=20,
    L1I_TAG=21, L1I_DIRTY=22, L1I_NWAY=23,
    L1D_TAG=24, L1D_DIRTY=25, L1D_NWAY=26,
    L2_TAG=27, L2_DIRTY=28, L2_NWAY=29,
    STATS=30,
    WU_OP=31, WU_PC=32, WU_ADDR=33, WU_TAKEN=34, WU_TARGET=35,
)

#: STATS slots (enum ``ST_*``).
ST = _Namespace(
    COMMITTED=0, BY_CLASS=1,
    FETCHED=12, FETCHED_WP=13, RENAMED=14, SQUASHED=15, EXCEPTIONS=16,
    BR_RESOLVED=17, BR_MISPRED=18, BTB_HITS=19, BTB_MISSES=20,
    L1I_HITS=21, L1I_MISSES=22, L1D_HITS=23, L1D_MISSES=24,
    L2_HITS=25, L2_MISSES=26, FORWARDED=27,
    STALL_ROS=28, STALL_LSQ=29, STALL_CK=30, STALL_INT=31, STALL_FP=32,
    STRUCTURAL=33, RF_INT=34, RF_FP=45,
)
ST_N = 56

#: Per-register-class block offsets inside STATS (enum ``RF_*``).
RF = _Namespace(
    ALLOCS=0, RELEASES=1, EARLY=2, REUSES=3, IMMEDIATE=4,
    SCHED_EARLY=5, CONVENTIONAL=6, CONDITIONAL=7,
    OCC_EMPTY=8, OCC_READY=9, OCC_IDLE=10,
)

#: ``sim_run`` statuses.
RUN_FINISHED = 0
RUN_NEED_WRONGPATH = 1
RUN_NEED_EXC = 2
RUN_DEADLOCK = 3
RUN_INTERNAL = 4

#: Deepest Release Queue the compiled core accepts; the depth itself is
#: config-derived (``ProcessorConfig.max_pending_branches``).
RQ_LEVELS_MAX = 256

ABI_MAGIC = 0x52503701


# ----------------------------------------------------------------------
def _cdef_block(source: str) -> str:
    """The ABI declarations between the CDEF markers of ``core.c``."""
    start = source.index("/* CDEF_START */")
    end = source.index("/* CDEF_END */")
    block = source[start + len("/* CDEF_START */"):end]
    if not block.strip():
        raise ToolchainError("core.c carries an empty CDEF block")
    return block


def build_cache_dir() -> Path:
    """Resolve the build cache directory (env override, else ``~/.cache``)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "accel"


def _compiler_command() -> Tuple[str, ...]:
    """The compiler argv prefix (``$REPRO_ACCEL_CC`` or the system cc)."""
    override = os.environ.get(CC_ENV)
    if override:
        parts = tuple(shlex.split(override))
        if not parts:
            raise ToolchainError(f"${CC_ENV} is set but empty")
        return parts
    import shutil

    for candidate in _CC_FALLBACKS:
        if shutil.which(candidate):
            return (candidate,)
    return (_DEFAULT_CC,)


def _extra_cflags() -> Tuple[str, ...]:
    """Extra compiler flags from ``$REPRO_ACCEL_CFLAGS`` (may be empty)."""
    return tuple(shlex.split(os.environ.get(CFLAGS_ENV, "")))


def _compile(source_path: Path, out_path: Path, cc: Tuple[str, ...],
             extra_flags: Tuple[str, ...] = ()) -> None:
    """Compile ``core.c`` into ``out_path`` (atomic via tmp + rename)."""
    out_path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=out_path.parent, suffix=".so.tmp")
    os.close(fd)
    command = list(cc) + ["-O2", "-shared", "-fPIC", *extra_flags,
                          "-o", tmp_name, str(source_path)]
    try:
        proc = subprocess.run(command, capture_output=True, text=True,
                              timeout=300)
    except (OSError, subprocess.SubprocessError) as exc:
        _unlink_quiet(tmp_name)
        raise ToolchainError(f"cannot run compiler {cc[0]!r}: {exc}") from exc
    if proc.returncode != 0:
        _unlink_quiet(tmp_name)
        tail = (proc.stderr or proc.stdout or "").strip()[-1000:]
        raise ToolchainError(
            f"compiling the accelerated core failed ({cc[0]}, "
            f"exit {proc.returncode}):\n{tail}")
    os.replace(tmp_name, out_path)


def _unlink_quiet(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


#: per-process cache: (ffi, lib) once loaded, or the ToolchainError that
#: prevented loading (so repeated resolution attempts stay cheap).
_LOADED: Optional[Tuple[object, object]] = None
_LOAD_ERROR: Optional[ToolchainError] = None


def reset_loader_cache() -> None:
    """Forget the per-process load result (tests flip ``$REPRO_ACCEL_CC``)."""
    global _LOADED, _LOAD_ERROR
    _LOADED = None
    _LOAD_ERROR = None


def load_core() -> Tuple[object, object]:
    """Return ``(ffi, lib)`` for the compiled core, building it if needed.

    Raises :class:`ToolchainError` on any failure; the result (success or
    failure) is cached per process.
    """
    global _LOADED, _LOAD_ERROR
    if _LOADED is not None:
        return _LOADED
    if _LOAD_ERROR is not None:
        raise _LOAD_ERROR
    try:
        _LOADED = _load_core_uncached()
        return _LOADED
    except ToolchainError as exc:
        _LOAD_ERROR = exc
        raise


def _load_core_uncached() -> Tuple[object, object]:
    try:
        import cffi
    except ImportError as exc:  # pragma: no cover - cffi is baked in here
        raise ToolchainError(f"cffi is not installed: {exc}") from exc

    try:
        source = _SOURCE_PATH.read_text()
    except OSError as exc:
        raise ToolchainError(f"cannot read {_SOURCE_PATH}: {exc}") from exc

    cc = _compiler_command()
    extra_flags = _extra_cflags()
    digest = hashlib.sha256()
    digest.update(source.encode())
    digest.update(repr(cc).encode())
    digest.update(repr(extra_flags).encode())
    digest.update(getattr(cffi, "__version__", "?").encode())
    so_path = build_cache_dir() / f"repro_core_{digest.hexdigest()[:16]}.so"
    if not so_path.exists():
        _compile(_SOURCE_PATH, so_path, cc, extra_flags)

    ffi = cffi.FFI()
    try:
        ffi.cdef(_cdef_block(source))
        lib = ffi.dlopen(str(so_path))
    except Exception as exc:  # cffi raises several exception families here
        raise ToolchainError(f"cannot load {so_path}: {exc}") from exc

    magic = lib.sim_get(ffi.NULL, SC.ABI_MAGIC)
    if magic != ABI_MAGIC:
        raise ToolchainError(
            f"ABI magic mismatch: compiled core reports {magic:#x}, "
            f"loader expects {ABI_MAGIC:#x}")
    return ffi, lib
