/*
 * Compiled per-instruction simulation core.
 *
 * A whole-machine C port of the per-cycle engine (commit -> writeback ->
 * issue -> rename -> fetch, reverse pipeline order), operated through a
 * deliberately tiny ABI: Python builds a Machine from a flat config
 * vector, fills the C-owned trace/predictor/cache arrays through typed
 * pointer accessors, and drives sim_run(), which executes cycles until
 * the run finishes or it needs Python (wrong-path payload refill,
 * exception-lottery refill, deadlock, or an internal inconsistency that
 * triggers the bit-exact Python fallback).
 *
 * Everything observable in SimStats is accumulated in the STATS array;
 * the semantics mirror the Python engine statement for statement — any
 * divergence is a bug caught by the equivalence suite, never a tolerated
 * approximation.
 *
 * The declarations between CDEF_START and CDEF_END are extracted
 * verbatim by the loader and handed to cffi; keep them ABI-stable.
 */

/* CDEF_START */
typedef struct Machine Machine;
Machine *sim_new(const long long *cfg, int ncfg);
void sim_free(Machine *m);
long long *sim_i64(Machine *m, int which);
double *sim_f64(Machine *m, int which);
signed char *sim_i8(Machine *m, int which);
long long sim_get(Machine *m, int which);
void sim_set(Machine *m, int which, long long value);
void sim_setf(Machine *m, int which, double value);
int sim_run(Machine *m);
/* CDEF_END */

#include <stdlib.h>
#include <string.h>

typedef long long i64;
typedef signed char i8;

/* ------------------------------------------------------------------ */
/* Config vector layout (mirrored in loader.py).                      */
/* ------------------------------------------------------------------ */
enum {
    CFG_TRACE_LEN = 0, CFG_FETCH_W, CFG_RENAME_W, CFG_ISSUE_W, CFG_COMMIT_W,
    CFG_MAX_TAKEN, CFG_FRONTEND, CFG_ROS, CFG_LSQ, CFG_CK_CAP,
    CFG_NPHYS_INT, CFG_NPHYS_FP, CFG_NLOG_INT, CFG_NLOG_FP,
    CFG_GSHARE_BITS, CFG_BTB_SETS, CFG_BTB_ASSOC,
    CFG_POLICY, CFG_REUSE, CFG_WP_ENABLED, CFG_EXC_ENABLED,
    CFG_L1I_SETS, CFG_L1I_ASSOC, CFG_L1I_SHIFT, CFG_L1I_LAT,
    CFG_L1D_SETS, CFG_L1D_ASSOC, CFG_L1D_SHIFT, CFG_L1D_LAT,
    CFG_L2_SETS, CFG_L2_ASSOC, CFG_L2_SHIFT, CFG_L2_LAT,
    CFG_MEM_LAT,
    CFG_FU = 34,          /* 6 x [count, unpipelined]  -> 34..45 */
    CFG_OP_LAT = 46,      /* 11 op latencies           -> 46..56 */
    CFG_WP_CAP = 57, CFG_EXC_CAP = 58, CFG_WARM_LEN = 59,
    NCFG = 60,
};

/* Scalar ids for sim_get / sim_set. */
enum {
    SC_STATUS = 0, SC_ERROR, SC_CYCLE, SC_MAX_CYCLES, SC_COMMIT_LIMIT,
    SC_DEADLOCK, SC_WP_COUNT, SC_WP_HEAD, SC_EXC_COUNT, SC_EXC_HEAD,
    SC_GS_HISTORY, SC_READY_PEAK, SC_SEQ, SC_ABI_MAGIC,
};

#define ABI_MAGIC 0x52503701LL

/* Array ids for sim_i64. */
enum {
    A_T_OP = 0, A_T_PC, A_T_DC, A_T_DEST, A_T_NSRC, A_T_SRC_CLASS,
    A_T_SRC_LOG, A_T_TAKEN, A_T_TARGET, A_T_ADDR,
    A_W_OP, A_W_DC, A_W_DEST, A_W_NSRC, A_W_SRC_CLASS, A_W_SRC_LOG,
    A_W_ADDR, A_W_TDELTA,
    A_B_TAG, A_B_TARGET, A_B_NWAY,
    A_L1I_TAG, A_L1I_DIRTY, A_L1I_NWAY,
    A_L1D_TAG, A_L1D_DIRTY, A_L1D_NWAY,
    A_L2_TAG, A_L2_DIRTY, A_L2_NWAY,
    A_STATS,
    A_WU_OP, A_WU_PC, A_WU_ADDR, A_WU_TAKEN, A_WU_TARGET,
};

/* sim_run statuses. */
enum {
    RUN_FINISHED = 0, RUN_NEED_WRONGPATH = 1, RUN_NEED_EXC = 2,
    RUN_DEADLOCK = 3, RUN_INTERNAL = 4,
};

/* Internal error details (SC_ERROR), for diagnostics only. */
enum {
    E_NONE = 0, E_FREELIST, E_ALLOC_EMPTY, E_WK_POOL, E_CQ_POOL, E_LW_POOL,
    E_RQ_OVERFLOW, E_RWC_MISSING, E_SLOT_MISMATCH, E_LSQ_REMOVE, E_CQ_RANGE,
    E_READY_POOL,
};

/* Op classes / predicates (repro.isa.opcodes). */
enum {
    OP_INT_ALU = 0, OP_INT_MULT, OP_FP_ADD, OP_FP_MULT, OP_FP_DIV,
    OP_LOAD, OP_STORE, OP_BRANCH, OP_FP_LOAD, OP_FP_STORE, OP_NOP,
    N_OPS,
};
static const int FU_KIND_OF[N_OPS] = {0, 1, 2, 3, 4, 5, 5, 0, 5, 5, 0};
#define IS_LOAD(op)   ((op) == OP_LOAD || (op) == OP_FP_LOAD)
#define IS_STORE(op)  ((op) == OP_STORE || (op) == OP_FP_STORE)
#define IS_MEM(op)    (IS_LOAD(op) || IS_STORE(op))
#define IS_BRANCH(op) ((op) == OP_BRANCH)

/* STATS slots (int64 counters; per-class blocks at the end). */
enum {
    ST_COMMITTED = 0,
    ST_BY_CLASS = 1,                /* 1..11: one per op class */
    ST_FETCHED = 12, ST_FETCHED_WP, ST_RENAMED, ST_SQUASHED, ST_EXCEPTIONS,
    ST_BR_RESOLVED, ST_BR_MISPRED, ST_BTB_HITS, ST_BTB_MISSES,
    ST_L1I_HITS, ST_L1I_MISSES, ST_L1D_HITS, ST_L1D_MISSES,
    ST_L2_HITS, ST_L2_MISSES, ST_FORWARDED,
    ST_STALL_ROS, ST_STALL_LSQ, ST_STALL_CK, ST_STALL_INT, ST_STALL_FP,
    ST_STRUCTURAL,
    ST_RF_INT = 34, ST_RF_FP = 45,  /* 11 slots per class, see RF_* */
    ST_N = 56,
};
/* Per-class block offsets. */
enum {
    RF_ALLOCS = 0, RF_RELEASES, RF_EARLY, RF_REUSES, RF_IMMEDIATE,
    RF_SCHED_EARLY, RF_CONVENTIONAL, RF_CONDITIONAL,
    RF_OCC_EMPTY, RF_OCC_READY, RF_OCC_IDLE,
};

#define RQ_LEVELS_MAX 256       /* compiled ceiling; depth itself is
                                 * config-derived (max_pending_branches) */
#define MAX_SRCS 3

/* ------------------------------------------------------------------ */
/* Sub-structures.                                                    */
/* ------------------------------------------------------------------ */
typedef struct {
    i64 *tag;        /* n_sets * assoc, -1 = empty way */
    i64 *dirty;
    i64 *nway;       /* ways in use per set */
    i64 n_sets, assoc, shift, lat;
    i64 *hits, *misses;   /* point into STATS */
} CacheZ;

typedef struct {            /* decoded front-end pipe entry */
    i64 ready_cycle;
    i64 pc, target, addr;
    i64 pred_idx, pred_hist;
    i64 resume_cursor;
    int op, dest_class, dest, nsrc;
    int src_class[MAX_SRCS], src_log[MAX_SRCS];
    int taken, has_pred, pred_taken, pred_raw, mispredicted, wrong_path;
} DQEnt;

typedef struct {            /* one release-queue level (slot) */
    i64 branch_seq;
    int rwns_n;
    int *rwns_phys;         /* insertion-ordered; update keeps position */
    int *rwns_log;          /* -1 == None */
    i64 *rwns_nv;
    int rwc_n;
    i64 *rwc_lu;            /* insertion-ordered LU seqs */
    int *rwc_nbits;
    int *rwc_bits;          /* 4 per LU entry */
    i64 *rwc_nv;            /* 4 per LU entry */
} RQLevel;

struct Machine {
    i64 cfg[NCFG];
    double exception_rate;

    /* run controls / scalars */
    int status;
    i64 error;
    i64 cycle, seq, max_cycles, commit_limit, deadlock_threshold;
    i64 last_commit_cycle, committed_watermark;
    i64 ready_peak;

    /* trace columns (C-owned, filled by Python) */
    i64 trace_len;
    i64 *t_op, *t_pc, *t_dc, *t_dest, *t_nsrc, *t_src_class, *t_src_log,
        *t_taken, *t_target, *t_addr;

    /* warm-up trace columns (C-owned, filled by Python; replayed once
     * through the predictor/BTB/memory models before the measured run) */
    i64 warm_len;
    i64 *wu_op, *wu_pc, *wu_addr, *wu_taken, *wu_target;
    int warm_done;

    /* wrong-path payload ring buffer (refilled by Python, status 1) */
    i64 wp_cap, wp_count, wp_head;
    i64 *w_op, *w_dc, *w_dest, *w_nsrc, *w_src_class, *w_src_log,
        *w_addr, *w_tdelta;

    /* exception lottery doubles (refilled by Python, status 2) */
    i64 exc_cap, exc_count, exc_head;
    double *exc_buf;

    /* gshare */
    i8 *gs_table;
    i64 gs_size, gs_mask, gs_history;

    /* BTB */
    i64 *btb_tag, *btb_target, *btb_nway;
    i64 btb_sets, btb_assoc;

    /* caches + memory */
    CacheZ l1i, l1d, l2;
    i64 mem_lat;

    /* functional units */
    i64 fu_count[6], fu_unpip[6];
    i64 fu_last_cycle[6], fu_used[6];
    i64 *fu_free_at;            /* unpipelined units, fu_off[kind] slices */
    i64 fu_off[6];
    i64 op_lat[N_OPS];

    /* register files: class 0 = INT, 1 = FP */
    i64 nphys[2], nlog[2];
    int *fl_ring[2];            /* FIFO free list */
    i64 fl_head[2], fl_count[2];
    i8 *fl_is_free[2];
    i64 *producer_seq[2];       /* -1 == None */
    int *producer_row[2];
    i64 *occ_alloc[2], *occ_write[2], *occ_lu[2];   /* -1 == None */
    i64 occ_empty[2], occ_ready[2], occ_idle[2];
    int *map[2], *iomt[2];
    i8 *map_stale[2], *arch_released[2];

    /* LUs table (basic/extended) */
    i64 *lus_seq[2];            /* -1 == None */
    i8 *lus_slot[2];

    /* policy */
    int policy;                 /* 0 conv, 1 basic, 2 extended */
    int reuse_on_committed_lu;

    /* ROS (ring of rows) */
    i64 ros_cap, ros_head, ros_count;
    int seen_exception;
    i64 *r_seq, *r_pc, *r_target, *r_addr, *r_resume, *r_pred_idx,
        *r_pred_hist;
    int *r_op, *r_dest_class, *r_dest_log, *r_pd, *r_old_pd, *r_mask,
        *r_nsrc, *r_src_class, *r_src_log, *r_src_phys;   /* *3 per row */
    i8 *r_completed, *r_squashed, *r_exception, *r_issued, *r_wrong_path,
       *r_fetch_mispred, *r_pred_taken, *r_pred_raw, *r_has_pred, *r_taken,
       *r_allocated_new, *r_reused, *r_rel_old, *r_in_ready;
    int *r_nwait;
    i64 *r_wait;                /* *3 per row */
    int *r_wk_head, *r_wk_tail; /* consumer list attached to producer row */

    /* ready set: min-heap on seq with lazy deletion */
    i64 *heap_seq;
    int *heap_row;
    i64 heap_n, heap_cap, rdy_count;

    /* wakeup node pool */
    i64 *wk_seq;
    int *wk_row, *wk_next;
    int wk_free;
    i64 wk_cap;

    /* completion queue: bucket ring + node pool */
    i64 cq_ring, cq_mask;
    int *cq_bucket, *cq_tail;
    i64 *cq_seq;
    int *cq_row, *cq_next;
    int cq_free;
    i64 cq_cap;

    /* LSQ ring + per-slot waiter lists */
    i64 lsq_cap, lsq_head, lsq_count;
    i64 *l_seq, *l_addr;
    i8 *l_is_store, *l_known;
    int *l_whead, *l_wtail;
    i64 *lw_seq;
    int *lw_row, *lw_next;
    int lw_free;
    i64 lw_cap;

    /* checkpoints: slot-indirected stack */
    i64 ck_cap, ck_count;
    int *ck_order, *ck_freestack;
    i64 ck_nfree;
    i64 *ck_seq;                /* per slot */
    int *ck_map[2];             /* per slot: nlog ints */
    i8 *ck_stale[2];
    i64 *ck_lus_seq[2];
    i8 *ck_lus_slot[2];

    /* release queues (extended), one per class; rq_levels slots each,
     * sized from the config's checkpoint capacity (max_pending_branches) */
    i64 rq_levels;
    RQLevel *rq_slots[2];
    int *rq_order[2];
    int *rq_freestack[2];
    int rq_count[2], rq_nfree[2];
    i64 rq_rwns_cap, rq_rwc_cap;

    /* decode queue ring */
    DQEnt *dq;
    i64 dq_cap, dq_head, dq_count, decode_capacity;

    /* fetch unit */
    i64 cursor, wp_pc, stall_until;
    int on_wrong_path;
    int wp_enabled, exc_enabled;

    /* scratch */
    int *scratch_rows, *blocked_rows, *freed_reg[2];

    /* stats */
    i64 st[ST_N];
    int finalized;
};

/* ------------------------------------------------------------------ */
/* Allocation helpers.                                                */
/* ------------------------------------------------------------------ */
static void *zmalloc(size_t n) {
    void *p = calloc(1, n ? n : 1);
    return p;
}
#define NEW_I64(n) ((i64 *)zmalloc((size_t)(n) * sizeof(i64)))
#define NEW_INT(n) ((int *)zmalloc((size_t)(n) * sizeof(int)))
#define NEW_I8(n)  ((i8 *)zmalloc((size_t)(n) * sizeof(i8)))

static void fill_i64(i64 *a, i64 n, i64 v) {
    for (i64 i = 0; i < n; i++) a[i] = v;
}
static void fill_int(int *a, i64 n, int v) {
    for (i64 i = 0; i < n; i++) a[i] = v;
}

static i64 next_pow2(i64 v) {
    i64 p = 1;
    while (p < v) p <<= 1;
    return p;
}

/* ------------------------------------------------------------------ */
/* gshare / BTB / caches / memory.                                    */
/* ------------------------------------------------------------------ */
static void gs_predict(Machine *m, i64 pc, i64 *idx, i64 *hist_before,
                       int *pred) {
    i64 hb = m->gs_history;
    i64 index = ((pc >> 2) ^ hb) & m->gs_mask;
    int p = m->gs_table[index] >= 2;
    m->gs_history = ((hb << 1) | p) & m->gs_mask;
    *idx = index;
    *hist_before = hb;
    *pred = p;
}

static void gs_resolve(Machine *m, i64 idx, i64 hist_before, int taken,
                       int predicted) {
    i8 counter = m->gs_table[idx];
    if (taken) {
        if (counter < 3) m->gs_table[idx] = (i8)(counter + 1);
    } else {
        if (counter > 0) m->gs_table[idx] = (i8)(counter - 1);
    }
    if (taken != predicted)
        m->gs_history = ((hist_before << 1) | (taken ? 1 : 0)) & m->gs_mask;
}

/* Returns target on hit (rotating the way to MRU), -1 on miss. */
static i64 btb_lookup(Machine *m, i64 pc) {
    i64 set = (pc >> 2) % m->btb_sets;
    i64 tag = pc >> 2;
    i64 base = set * m->btb_assoc;
    i64 n = m->btb_nway[set];
    for (i64 pos = 0; pos < n; pos++) {
        if (m->btb_tag[base + pos] == tag) {
            i64 target = m->btb_target[base + pos];
            for (i64 k = pos; k > 0; k--) {
                m->btb_tag[base + k] = m->btb_tag[base + k - 1];
                m->btb_target[base + k] = m->btb_target[base + k - 1];
            }
            m->btb_tag[base] = tag;
            m->btb_target[base] = target;
            m->st[ST_BTB_HITS]++;
            return target;
        }
    }
    m->st[ST_BTB_MISSES]++;
    return -1;
}

static void btb_update(Machine *m, i64 pc, i64 target) {
    i64 set = (pc >> 2) % m->btb_sets;
    i64 tag = pc >> 2;
    i64 base = set * m->btb_assoc;
    i64 n = m->btb_nway[set];
    i64 pos = -1;
    for (i64 k = 0; k < n; k++) {
        if (m->btb_tag[base + k] == tag) { pos = k; break; }
    }
    if (pos >= 0) {
        for (i64 k = pos; k < n - 1; k++) {
            m->btb_tag[base + k] = m->btb_tag[base + k + 1];
            m->btb_target[base + k] = m->btb_target[base + k + 1];
        }
        n--;
    }
    for (i64 k = (n < m->btb_assoc ? n : m->btb_assoc - 1); k > 0; k--) {
        m->btb_tag[base + k] = m->btb_tag[base + k - 1];
        m->btb_target[base + k] = m->btb_target[base + k - 1];
    }
    m->btb_tag[base] = tag;
    m->btb_target[base] = target;
    if (n < m->btb_assoc) n++;          /* insert grew the set (then trim) */
    m->btb_nway[set] = n;
}

/* Exact port of Cache.access_hit: MRU rotate on hit, front insert+trim
 * on miss; the hit path re-marks dirty after the rotate. */
static int cache_access(CacheZ *c, i64 address, int is_write) {
    i64 line = address >> c->shift;
    i64 tag = line;
    i64 set = line % c->n_sets;
    i64 base = set * c->assoc;
    i64 n = c->nway[set];
    for (i64 pos = 0; pos < n; pos++) {
        if (c->tag[base + pos] == tag) {
            i64 dirty = c->dirty[base + pos];
            for (i64 k = pos; k > 0; k--) {
                c->tag[base + k] = c->tag[base + k - 1];
                c->dirty[base + k] = c->dirty[base + k - 1];
            }
            c->tag[base] = tag;
            c->dirty[base] = dirty;
            if (is_write) c->dirty[base] = 1;
            (*c->hits)++;
            return 1;
        }
    }
    (*c->misses)++;
    i64 keep = (n < c->assoc) ? n : c->assoc - 1;
    for (i64 k = keep; k > 0; k--) {
        c->tag[base + k] = c->tag[base + k - 1];
        c->dirty[base + k] = c->dirty[base + k - 1];
    }
    c->tag[base] = tag;
    c->dirty[base] = is_write ? 1 : 0;
    if (n < c->assoc) n++;
    c->nway[set] = n;
    return 0;
}

static i64 mem_access(Machine *m, CacheZ *l1, i64 address, int is_write) {
    if (cache_access(l1, address, is_write))
        return l1->lat;
    i64 latency = l1->lat + m->l2.lat;
    if (!cache_access(&m->l2, address, 0))
        latency += m->mem_lat;
    return latency;
}
#define MEM_IACCESS(m, pc)   mem_access((m), &(m)->l1i, (pc), 0)
#define MEM_DREAD(m, addr)   mem_access((m), &(m)->l1d, (addr), 0)
#define MEM_DWRITE(m, addr)  mem_access((m), &(m)->l1d, (addr), 1)

/* ------------------------------------------------------------------ */
/* Functional units.                                                  */
/* ------------------------------------------------------------------ */
static i64 fu_try_issue(Machine *m, int op, i64 cycle) {
    int kind = FU_KIND_OF[op];
    if (!m->fu_unpip[kind]) {
        if (m->fu_last_cycle[kind] != cycle) {
            m->fu_last_cycle[kind] = cycle;
            m->fu_used[kind] = 1;
        } else if (m->fu_used[kind] < m->fu_count[kind]) {
            m->fu_used[kind]++;
        } else {
            return -1;
        }
        return m->op_lat[op];
    }
    i64 *units = m->fu_free_at + m->fu_off[kind];
    i64 lat = m->op_lat[op];
    for (i64 i = 0; i < m->fu_count[kind]; i++) {
        if (units[i] <= cycle) {
            units[i] = cycle + lat;
            return lat;
        }
    }
    return -1;
}

/* ------------------------------------------------------------------ */
/* Register file: checked free list + occupancy accounting.           */
/* ------------------------------------------------------------------ */
static void occ_attribute(Machine *m, int c, int reg, i64 end_cycle) {
    i64 alloc = m->occ_alloc[c][reg];
    if (alloc < 0) return;
    i64 write = m->occ_write[c][reg];
    if (write < 0) {
        if (end_cycle > alloc) m->occ_empty[c] += end_cycle - alloc;
        return;
    }
    if (write < alloc) write = alloc;
    if (write > alloc) m->occ_empty[c] += write - alloc;
    i64 last_use = m->occ_lu[c][reg];
    if (last_use < 0 || last_use < write) last_use = write;
    if (last_use > end_cycle) last_use = end_cycle;
    if (last_use > write) m->occ_ready[c] += last_use - write;
    if (end_cycle > last_use) m->occ_idle[c] += end_cycle - last_use;
}

static int fl_push(Machine *m, int c, int reg) {
    if (reg < 0 || reg >= m->nphys[c] || m->fl_is_free[c][reg]) {
        m->status = RUN_INTERNAL;
        m->error = E_FREELIST;
        return 0;
    }
    i64 pos = (m->fl_head[c] + m->fl_count[c]) % m->nphys[c];
    m->fl_ring[c][pos] = reg;
    m->fl_count[c]++;
    m->fl_is_free[c][reg] = 1;
    return 1;
}

/* PhysicalRegisterFile.release / the release_many per-register body. */
static void release_reg(Machine *m, int c, int reg, i64 cycle, int early) {
    if (!fl_push(m, c, reg)) return;
    m->producer_seq[c][reg] = -1;
    m->producer_row[c][reg] = -1;
    occ_attribute(m, c, reg, cycle);
    m->occ_alloc[c][reg] = -1;
    m->occ_write[c][reg] = -1;
    m->occ_lu[c][reg] = -1;
    i64 *rf = m->st + (c ? ST_RF_FP : ST_RF_INT);
    rf[RF_RELEASES]++;
    if (early) rf[RF_EARLY]++;
}

/* _release_physical: release + stale-architectural-mapping bookkeeping. */
static void release_physical(Machine *m, int c, int reg, int logical,
                             i64 cycle, int early) {
    release_reg(m, c, reg, cycle, early);
    if (logical >= 0 && m->iomt[c][logical] == reg)
        m->arch_released[c][logical] = 1;
}

static int rf_allocate(Machine *m, int c, i64 cycle, i64 producer,
                       int prow) {
    if (m->fl_count[c] == 0) {
        m->status = RUN_INTERNAL;
        m->error = E_ALLOC_EMPTY;
        return -1;
    }
    int reg = m->fl_ring[c][m->fl_head[c]];
    m->fl_head[c] = (m->fl_head[c] + 1) % m->nphys[c];
    m->fl_count[c]--;
    m->fl_is_free[c][reg] = 0;
    m->producer_seq[c][reg] = producer;
    m->producer_row[c][reg] = prow;
    m->occ_alloc[c][reg] = cycle;
    m->occ_write[c][reg] = -1;
    m->occ_lu[c][reg] = -1;
    m->st[(c ? ST_RF_FP : ST_RF_INT) + RF_ALLOCS]++;
    return reg;
}

static void mark_written(Machine *m, int c, int reg, i64 cycle) {
    m->producer_seq[c][reg] = -1;
    m->producer_row[c][reg] = -1;
    if (m->occ_write[c][reg] < 0) m->occ_write[c][reg] = cycle;
}

/* ------------------------------------------------------------------ */
/* ROS ring helpers.                                                  */
/* ------------------------------------------------------------------ */
#define ROS_ROW(m, off) ((int)(((m)->ros_head + (off)) % (m)->ros_cap))
#define ROW_LIVE(m, row, sq) \
    ((m)->r_seq[row] == (sq) && !(m)->r_squashed[row])

/* Binary search the age-ordered window for seq; returns row or -1. */
static int ros_find(Machine *m, i64 seq) {
    i64 lo = 0, hi = m->ros_count;
    while (lo < hi) {
        i64 mid = (lo + hi) / 2;
        int row = ROS_ROW(m, mid);
        if (m->r_seq[row] < seq) lo = mid + 1;
        else hi = mid;
    }
    if (lo < m->ros_count) {
        int row = ROS_ROW(m, lo);
        if (m->r_seq[row] == seq && !m->r_squashed[row]) return row;
    }
    return -1;
}

static i64 ros_completed_prefix(Machine *m, i64 limit) {
    i64 n = m->ros_count < limit ? m->ros_count : limit;
    i64 run = 0;
    while (run < n && m->r_completed[ROS_ROW(m, run)]) run++;
    return run;
}

/* First offset with a pending exception within the prefix, else -1. */
static i64 ros_exception_in_prefix(Machine *m, i64 length) {
    if (!m->seen_exception) return -1;
    for (i64 off = 0; off < length; off++)
        if (m->r_exception[ROS_ROW(m, off)]) return off;
    return -1;
}

/* ------------------------------------------------------------------ */
/* Ready set: min-heap on sequence numbers with lazy deletion.        */
/* The heap stores (seq,row) pairs; r_in_ready is the live flag.      */
/* ------------------------------------------------------------------ */
static void heap_push(Machine *m, i64 seq, int row) {
    if (m->heap_n >= m->heap_cap) {
        /* Compact: rebuild from live entries (rare; lazy deletion only
         * grows the heap when entries are discarded, capacity is 4x the
         * ROS so a full heap is mostly dead weight). */
        i64 n = 0;
        for (i64 i = 0; i < m->heap_n; i++) {
            int r = m->heap_row[i];
            if (m->r_in_ready[r] && m->r_seq[r] == m->heap_seq[i]) {
                m->heap_seq[n] = m->heap_seq[i];
                m->heap_row[n] = r;
                n++;
            }
        }
        m->heap_n = n;
        for (i64 i = 1; i < n; i++) {           /* heapify by sifting up */
            i64 j = i;
            while (j > 0) {
                i64 parent = (j - 1) / 2;
                if (m->heap_seq[parent] <= m->heap_seq[j]) break;
                i64 ts = m->heap_seq[parent]; int tr = m->heap_row[parent];
                m->heap_seq[parent] = m->heap_seq[j];
                m->heap_row[parent] = m->heap_row[j];
                m->heap_seq[j] = ts; m->heap_row[j] = tr;
                j = parent;
            }
        }
        if (m->heap_n >= m->heap_cap) {
            m->status = RUN_INTERNAL;
            m->error = E_READY_POOL;
            return;
        }
    }
    i64 i = m->heap_n++;
    m->heap_seq[i] = seq;
    m->heap_row[i] = row;
    while (i > 0) {
        i64 parent = (i - 1) / 2;
        if (m->heap_seq[parent] <= m->heap_seq[i]) break;
        i64 ts = m->heap_seq[parent]; int tr = m->heap_row[parent];
        m->heap_seq[parent] = m->heap_seq[i];
        m->heap_row[parent] = m->heap_row[i];
        m->heap_seq[i] = ts; m->heap_row[i] = tr;
        i = parent;
    }
}

static void heap_pop_min(Machine *m, i64 *seq, int *row) {
    *seq = m->heap_seq[0];
    *row = m->heap_row[0];
    m->heap_n--;
    if (m->heap_n > 0) {
        m->heap_seq[0] = m->heap_seq[m->heap_n];
        m->heap_row[0] = m->heap_row[m->heap_n];
        i64 i = 0;
        for (;;) {
            i64 l = 2 * i + 1, r = 2 * i + 2, s = i;
            if (l < m->heap_n && m->heap_seq[l] < m->heap_seq[s]) s = l;
            if (r < m->heap_n && m->heap_seq[r] < m->heap_seq[s]) s = r;
            if (s == i) break;
            i64 ts = m->heap_seq[s]; int tr = m->heap_row[s];
            m->heap_seq[s] = m->heap_seq[i];
            m->heap_row[s] = m->heap_row[i];
            m->heap_seq[i] = ts; m->heap_row[i] = tr;
            i = s;
        }
    }
}

static void ready_add(Machine *m, int row) {
    if (m->r_in_ready[row]) return;
    m->r_in_ready[row] = 1;
    m->rdy_count++;
    if (m->rdy_count > m->ready_peak) m->ready_peak = m->rdy_count;
    heap_push(m, m->r_seq[row], row);
}

static void ready_discard(Machine *m, int row) {
    if (m->r_in_ready[row]) {
        m->r_in_ready[row] = 0;
        m->rdy_count--;
    }
}

/* Pop the oldest live ready entry; caller guarantees rdy_count > 0. */
static int ready_pop(Machine *m) {
    for (;;) {
        i64 seq;
        int row;
        heap_pop_min(m, &seq, &row);
        if (m->r_in_ready[row] && m->r_seq[row] == seq) {
            m->r_in_ready[row] = 0;
            m->rdy_count--;
            return row;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Wakeup index: FIFO consumer lists attached to the producer row.    */
/* ------------------------------------------------------------------ */
static void wk_register(Machine *m, int prow, i64 cseq, int crow) {
    int node = m->wk_free;
    if (node < 0) {
        m->status = RUN_INTERNAL;
        m->error = E_WK_POOL;
        return;
    }
    m->wk_free = m->wk_next[node];
    m->wk_seq[node] = cseq;
    m->wk_row[node] = crow;
    m->wk_next[node] = -1;
    if (m->r_wk_tail[prow] >= 0)
        m->wk_next[m->r_wk_tail[prow]] = node;
    else
        m->r_wk_head[prow] = node;
    m->r_wk_tail[prow] = node;
}

static void wk_drop(Machine *m, int prow) {
    int node = m->r_wk_head[prow];
    while (node >= 0) {
        int next = m->wk_next[node];
        m->wk_next[node] = m->wk_free;
        m->wk_free = node;
        node = next;
    }
    m->r_wk_head[prow] = -1;
    m->r_wk_tail[prow] = -1;
}

/* Remove one occurrence of pseq from the row's wait set. */
static void wait_discard(Machine *m, int row, i64 pseq) {
    i64 *w = m->r_wait + (i64)row * MAX_SRCS;
    int n = m->r_nwait[row];
    for (int i = 0; i < n; i++) {
        if (w[i] == pseq) {
            w[i] = w[n - 1];
            m->r_nwait[row] = n - 1;
            return;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Completion queue: power-of-two bucket ring of FIFO node lists.     */
/* ------------------------------------------------------------------ */
static void cq_schedule(Machine *m, i64 at_cycle, i64 seq, int row) {
    if (at_cycle - m->cycle >= m->cq_ring) {
        m->status = RUN_INTERNAL;
        m->error = E_CQ_RANGE;
        return;
    }
    int node = m->cq_free;
    if (node < 0) {
        m->status = RUN_INTERNAL;
        m->error = E_CQ_POOL;
        return;
    }
    m->cq_free = m->cq_next[node];
    m->cq_seq[node] = seq;
    m->cq_row[node] = row;
    m->cq_next[node] = -1;
    i64 idx = at_cycle & m->cq_mask;
    if (m->cq_tail[idx] >= 0)
        m->cq_next[m->cq_tail[idx]] = node;
    else
        m->cq_bucket[idx] = node;
    m->cq_tail[idx] = node;
}

/* ------------------------------------------------------------------ */
/* LSQ: ring with stable slot indices and per-slot waiter lists.      */
/* ------------------------------------------------------------------ */
static void lsq_free_waiters(Machine *m, i64 slot) {
    int node = m->l_whead[slot];
    while (node >= 0) {
        int next = m->lw_next[node];
        m->lw_next[node] = m->lw_free;
        m->lw_free = node;
        node = next;
    }
    m->l_whead[slot] = -1;
    m->l_wtail[slot] = -1;
}

static void lsq_insert(Machine *m, i64 seq, int is_store, i64 addr) {
    i64 slot = (m->lsq_head + m->lsq_count) % m->lsq_cap;
    m->l_seq[slot] = seq;
    m->l_is_store[slot] = (i8)is_store;
    m->l_addr[slot] = addr;
    m->l_known[slot] = 0;
    m->lsq_count++;
}

/* Last older known store to the same 8-byte-aligned address, if any. */
static int lsq_store_forwards(Machine *m, i64 load_seq, i64 addr) {
    i64 target = addr & ~7LL;
    int hit = 0;
    for (i64 off = 0; off < m->lsq_count; off++) {
        i64 slot = (m->lsq_head + off) % m->lsq_cap;
        if (m->l_seq[slot] >= load_seq) break;
        if (m->l_is_store[slot] && m->l_known[slot] &&
            (m->l_addr[slot] & ~7LL) == target)
            hit = 1;
    }
    if (hit) m->st[ST_FORWARDED]++;
    return hit;
}

/* Park behind the first older store with an unknown address; 1 if parked. */
static int lsq_park_blocked(Machine *m, i64 load_seq, int load_row) {
    for (i64 off = 0; off < m->lsq_count; off++) {
        i64 slot = (m->lsq_head + off) % m->lsq_cap;
        if (m->l_seq[slot] >= load_seq) break;
        if (m->l_is_store[slot] && !m->l_known[slot]) {
            int node = m->lw_free;
            if (node < 0) {
                m->status = RUN_INTERNAL;
                m->error = E_LW_POOL;
                return 0;
            }
            m->lw_free = m->lw_next[node];
            m->lw_seq[node] = load_seq;
            m->lw_row[node] = load_row;
            m->lw_next[node] = -1;
            if (m->l_wtail[slot] >= 0)
                m->lw_next[m->l_wtail[slot]] = node;
            else
                m->l_whead[slot] = node;
            m->l_wtail[slot] = node;
            return 1;
        }
    }
    return 0;
}

static i64 lsq_find_slot(Machine *m, i64 seq) {
    i64 lo = 0, hi = m->lsq_count;
    while (lo < hi) {
        i64 mid = (lo + hi) / 2;
        i64 slot = (m->lsq_head + mid) % m->lsq_cap;
        if (m->l_seq[slot] < seq) lo = mid + 1;
        else hi = mid;
    }
    if (lo < m->lsq_count) {
        i64 slot = (m->lsq_head + lo) % m->lsq_cap;
        if (m->l_seq[slot] == seq) return slot;
    }
    return -1;
}

static void make_issue_ready(Machine *m, int row);   /* fwd */

/* Address becomes known at issue (loads and stores alike); wake the
 * slot's parked loads in FIFO order. */
static void lsq_mark_address_known(Machine *m, i64 seq) {
    i64 slot = lsq_find_slot(m, seq);
    if (slot < 0) return;
    m->l_known[slot] = 1;
    int node = m->l_whead[slot];
    m->l_whead[slot] = -1;
    m->l_wtail[slot] = -1;
    while (node >= 0) {
        i64 wseq = m->lw_seq[node];
        int wrow = m->lw_row[node];
        int next = m->lw_next[node];
        m->lw_next[node] = m->lw_free;
        m->lw_free = node;
        if (ROW_LIVE(m, wrow, wseq))
            make_issue_ready(m, wrow);   /* may re-park on a later store */
        node = next;
    }
}

/* Commit-time removal; only the head is ever removed in practice. */
static void lsq_remove(Machine *m, i64 seq) {
    if (m->lsq_count > 0 && m->l_seq[m->lsq_head] == seq) {
        lsq_free_waiters(m, m->lsq_head);
        m->lsq_head = (m->lsq_head + 1) % m->lsq_cap;
        m->lsq_count--;
        return;
    }
    m->status = RUN_INTERNAL;
    m->error = E_LSQ_REMOVE;
}

static void lsq_squash_younger(Machine *m, i64 seq) {
    while (m->lsq_count > 0) {
        i64 slot = (m->lsq_head + m->lsq_count - 1) % m->lsq_cap;
        if (m->l_seq[slot] <= seq) break;
        lsq_free_waiters(m, slot);
        m->lsq_count--;
    }
}

static void lsq_clear(Machine *m) {
    for (i64 off = 0; off < m->lsq_count; off++)
        lsq_free_waiters(m, (m->lsq_head + off) % m->lsq_cap);
    m->lsq_head = 0;
    m->lsq_count = 0;
}

/* ------------------------------------------------------------------ */
/* Checkpoint stack (slot-indirected).                                */
/* ------------------------------------------------------------------ */
static void ck_push(Machine *m, i64 seq) {
    int slot = m->ck_freestack[--m->ck_nfree];
    m->ck_seq[slot] = seq;
    for (int c = 0; c < 2; c++) {
        i64 nl = m->nlog[c];
        memcpy(m->ck_map[c] + (i64)slot * nl, m->map[c],
               (size_t)nl * sizeof(int));
        memcpy(m->ck_stale[c] + (i64)slot * nl, m->map_stale[c],
               (size_t)nl * sizeof(i8));
        if (m->policy != 0) {
            memcpy(m->ck_lus_seq[c] + (i64)slot * nl, m->lus_seq[c],
                   (size_t)nl * sizeof(i64));
            memcpy(m->ck_lus_slot[c] + (i64)slot * nl, m->lus_slot[c],
                   (size_t)nl * sizeof(i8));
        }
    }
    m->ck_order[m->ck_count++] = slot;
}

static void ck_confirm(Machine *m, i64 seq) {
    for (i64 i = 0; i < m->ck_count; i++) {
        int slot = m->ck_order[i];
        if (m->ck_seq[slot] == seq) {
            memmove(m->ck_order + i, m->ck_order + i + 1,
                    (size_t)(m->ck_count - i - 1) * sizeof(int));
            m->ck_count--;
            m->ck_freestack[m->ck_nfree++] = slot;
            return;
        }
    }
}

/* Restore the snapshot taken at seq and drop it plus everything younger. */
static void ck_mispredict(Machine *m, i64 seq) {
    i64 pos = -1;
    for (i64 i = 0; i < m->ck_count; i++)
        if (m->ck_seq[m->ck_order[i]] == seq) { pos = i; break; }
    if (pos < 0) return;
    int slot = m->ck_order[pos];
    for (i64 i = pos; i < m->ck_count; i++)
        m->ck_freestack[m->ck_nfree++] = m->ck_order[i];
    m->ck_count = pos;
    for (int c = 0; c < 2; c++) {
        i64 nl = m->nlog[c];
        memcpy(m->map[c], m->ck_map[c] + (i64)slot * nl,
               (size_t)nl * sizeof(int));
        memcpy(m->map_stale[c], m->ck_stale[c] + (i64)slot * nl,
               (size_t)nl * sizeof(i8));
    }
    if (m->policy != 0) {
        for (int c = 0; c < 2; c++) {
            i64 nl = m->nlog[c];
            memcpy(m->lus_seq[c], m->ck_lus_seq[c] + (i64)slot * nl,
                   (size_t)nl * sizeof(i64));
            memcpy(m->lus_slot[c], m->ck_lus_slot[c] + (i64)slot * nl,
                   (size_t)nl * sizeof(i8));
        }
    }
}

static void ck_squash_clear(Machine *m) {
    for (i64 i = 0; i < m->ck_count; i++)
        m->ck_freestack[m->ck_nfree++] = m->ck_order[i];
    m->ck_count = 0;
}

static int ck_has_pending_younger(Machine *m, i64 seq) {
    return m->ck_count > 0 &&
           m->ck_seq[m->ck_order[m->ck_count - 1]] > seq;
}

/* ------------------------------------------------------------------ */
/* Release queues (extended policy), one per register class.          */
/* Levels keep Python-dict semantics: ordered, update-in-place.       */
/* ------------------------------------------------------------------ */
static void rq_push_level(Machine *m, int c, i64 branch_seq) {
    if (m->rq_count[c] >= m->rq_levels || m->rq_nfree[c] == 0) {
        m->status = RUN_INTERNAL;
        m->error = E_RQ_OVERFLOW;
        return;
    }
    int slot = m->rq_freestack[c][--m->rq_nfree[c]];
    RQLevel *lv = &m->rq_slots[c][slot];
    lv->branch_seq = branch_seq;
    lv->rwns_n = 0;
    lv->rwc_n = 0;
    m->rq_order[c][m->rq_count[c]++] = slot;
}

static void rwns_insert_or_update(Machine *m, RQLevel *lv, int phys,
                                  int logical, i64 nv) {
    for (int i = 0; i < lv->rwns_n; i++) {
        if (lv->rwns_phys[i] == phys && lv->rwns_log[i] == logical) {
            lv->rwns_nv[i] = nv;
            return;
        }
    }
    if (lv->rwns_n >= m->rq_rwns_cap) {
        m->status = RUN_INTERNAL;
        m->error = E_RQ_OVERFLOW;
        return;
    }
    lv->rwns_phys[lv->rwns_n] = phys;
    lv->rwns_log[lv->rwns_n] = logical;
    lv->rwns_nv[lv->rwns_n] = nv;
    lv->rwns_n++;
}

static void rwc_add_bit(Machine *m, RQLevel *lv, i64 lu_seq, int bit,
                        i64 nv) {
    int idx = -1;
    for (int i = 0; i < lv->rwc_n; i++)
        if (lv->rwc_lu[i] == lu_seq) { idx = i; break; }
    if (idx < 0) {
        if (lv->rwc_n >= m->rq_rwc_cap) {
            m->status = RUN_INTERNAL;
            m->error = E_RQ_OVERFLOW;
            return;
        }
        idx = lv->rwc_n++;
        lv->rwc_lu[idx] = lu_seq;
        lv->rwc_nbits[idx] = 0;
    }
    int *bits = lv->rwc_bits + idx * 4;
    i64 *nvs = lv->rwc_nv + idx * 4;
    for (int b = 0; b < lv->rwc_nbits[idx]; b++) {
        if (bits[b] == bit) {
            nvs[b] = nv;
            return;
        }
    }
    int nb = lv->rwc_nbits[idx]++;
    bits[nb] = bit;
    nvs[nb] = nv;
}

#define RQ_TAIL(m, c) \
    (&(m)->rq_slots[c][(m)->rq_order[c][(m)->rq_count[c] - 1]])

static void rq_schedule_committed(Machine *m, int c, int phys, int logical,
                                  i64 nv_seq) {
    rwns_insert_or_update(m, RQ_TAIL(m, c), phys, logical, nv_seq);
}

static void rq_schedule_inflight(Machine *m, int c, i64 lu_seq, int bit,
                                 i64 nv_seq) {
    rwc_add_bit(m, RQ_TAIL(m, c), lu_seq, bit, nv_seq);
}

/* The slot a mask bit names: bit 8 = destination, bits 1/2/4 = sources. */
static void phys_of_slot(Machine *m, int row, int bit, int *cls, int *phys,
                         int *logical) {
    if (bit == 8) {
        *cls = m->r_dest_class[row];
        *phys = m->r_pd[row];
        *logical = m->r_dest_log[row];
    } else {
        int slot = (bit == 1) ? 0 : (bit == 2) ? 1 : 2;
        *cls = m->r_src_class[row * MAX_SRCS + slot];
        *phys = m->r_src_phys[row * MAX_SRCS + slot];
        *logical = m->r_src_log[row * MAX_SRCS + slot];
    }
}

/* A scheduled LU commits: resolve its pending slot-bits into RwNS
 * entries of whichever levels carry them. */
static void rq_on_lu_commit(Machine *m, int c, i64 lu_seq, int row) {
    for (i64 i = 0; i < m->rq_count[c]; i++) {
        RQLevel *lv = &m->rq_slots[c][m->rq_order[c][i]];
        int idx = -1;
        for (int k = 0; k < lv->rwc_n; k++)
            if (lv->rwc_lu[k] == lu_seq) { idx = k; break; }
        if (idx < 0) continue;
        int *bits = lv->rwc_bits + idx * 4;
        i64 *nvs = lv->rwc_nv + idx * 4;
        for (int b = 0; b < lv->rwc_nbits[idx]; b++) {
            int sc, sp, sl;
            phys_of_slot(m, row, bits[b], &sc, &sp, &sl);
            rwns_insert_or_update(m, lv, sp, sl, nvs[b]);
        }
        memmove(lv->rwc_lu + idx, lv->rwc_lu + idx + 1,
                (size_t)(lv->rwc_n - idx - 1) * sizeof(i64));
        memmove(lv->rwc_nbits + idx, lv->rwc_nbits + idx + 1,
                (size_t)(lv->rwc_n - idx - 1) * sizeof(int));
        memmove(lv->rwc_bits + idx * 4, lv->rwc_bits + (idx + 1) * 4,
                (size_t)(lv->rwc_n - idx - 1) * 4 * sizeof(int));
        memmove(lv->rwc_nv + idx * 4, lv->rwc_nv + (idx + 1) * 4,
                (size_t)(lv->rwc_n - idx - 1) * 4 * sizeof(i64));
        lv->rwc_n--;
    }
}

static void rq_on_branch_confirmed(Machine *m, int c, i64 seq) {
    i64 index = -1;
    for (i64 i = 0; i < m->rq_count[c]; i++)
        if (m->rq_slots[c][m->rq_order[c][i]].branch_seq == seq) {
            index = i;
            break;
        }
    if (index < 0) return;
    int slot = m->rq_order[c][index];
    RQLevel *lv = &m->rq_slots[c][slot];
    memmove(m->rq_order[c] + index, m->rq_order[c] + index + 1,
            (size_t)(m->rq_count[c] - index - 1) * sizeof(int));
    m->rq_count[c]--;
    if (index == 0) {
        /* Oldest level confirmed: fire RwNS releases, promote RwC bits
         * onto their (still in-flight) LU entries' early-release masks. */
        for (int i = 0; i < lv->rwns_n; i++)
            release_physical(m, c, lv->rwns_phys[i], lv->rwns_log[i],
                             m->cycle, 1);
        for (int k = 0; k < lv->rwc_n; k++) {
            int mask = 0;
            for (int b = 0; b < lv->rwc_nbits[k]; b++)
                mask |= lv->rwc_bits[k * 4 + b];
            int lrow = ros_find(m, lv->rwc_lu[k]);
            if (lrow < 0) {
                m->status = RUN_INTERNAL;
                m->error = E_RWC_MISSING;
                return;
            }
            m->r_mask[lrow] |= mask;
        }
    } else {
        /* Inner level: merge into the next-older one. */
        RQLevel *older = &m->rq_slots[c][m->rq_order[c][index - 1]];
        for (int i = 0; i < lv->rwns_n; i++)
            rwns_insert_or_update(m, older, lv->rwns_phys[i],
                                  lv->rwns_log[i], lv->rwns_nv[i]);
        for (int k = 0; k < lv->rwc_n; k++)
            for (int b = 0; b < lv->rwc_nbits[k]; b++)
                rwc_add_bit(m, older, lv->rwc_lu[k],
                            lv->rwc_bits[k * 4 + b], lv->rwc_nv[k * 4 + b]);
    }
    m->rq_freestack[c][m->rq_nfree[c]++] = slot;
}

/* Drop every scheduling requested by a squashed next-version. */
static void rq_cancel_younger(Machine *m, int c, i64 seq) {
    for (i64 i = 0; i < m->rq_count[c]; i++) {
        RQLevel *lv = &m->rq_slots[c][m->rq_order[c][i]];
        int n = 0;
        for (int k = 0; k < lv->rwns_n; k++) {
            if (lv->rwns_nv[k] <= seq) {
                lv->rwns_phys[n] = lv->rwns_phys[k];
                lv->rwns_log[n] = lv->rwns_log[k];
                lv->rwns_nv[n] = lv->rwns_nv[k];
                n++;
            }
        }
        lv->rwns_n = n;
        n = 0;
        for (int k = 0; k < lv->rwc_n; k++) {
            int nb = 0;
            for (int b = 0; b < lv->rwc_nbits[k]; b++) {
                if (lv->rwc_nv[k * 4 + b] <= seq) {
                    lv->rwc_bits[k * 4 + nb] = lv->rwc_bits[k * 4 + b];
                    lv->rwc_nv[k * 4 + nb] = lv->rwc_nv[k * 4 + b];
                    nb++;
                }
            }
            if (nb > 0) {
                lv->rwc_lu[n] = lv->rwc_lu[k];
                lv->rwc_nbits[n] = nb;
                if (n != k) {
                    memmove(lv->rwc_bits + n * 4, lv->rwc_bits + k * 4,
                            4 * sizeof(int));
                    memmove(lv->rwc_nv + n * 4, lv->rwc_nv + k * 4,
                            4 * sizeof(i64));
                }
                n++;
            }
        }
        lv->rwc_n = n;
    }
}

static void rq_on_branch_mispredicted(Machine *m, int c, i64 seq) {
    i64 index = -1;
    for (i64 i = 0; i < m->rq_count[c]; i++)
        if (m->rq_slots[c][m->rq_order[c][i]].branch_seq == seq) {
            index = i;
            break;
        }
    if (index >= 0) {
        for (i64 i = index; i < m->rq_count[c]; i++)
            m->rq_freestack[c][m->rq_nfree[c]++] = m->rq_order[c][i];
        m->rq_count[c] = index;
    }
    rq_cancel_younger(m, c, seq);
}

static void rq_clear(Machine *m, int c) {
    for (i64 i = 0; i < m->rq_count[c]; i++)
        m->rq_freestack[c][m->rq_nfree[c]++] = m->rq_order[c][i];
    m->rq_count[c] = 0;
}

/* ------------------------------------------------------------------ */
/* Release-policy hooks.                                              */
/* ------------------------------------------------------------------ */
/* Destination-rename outcomes. */
enum { OUT_ALLOC_NOREL = 0, OUT_ALLOC_REL = 1, OUT_REUSE = 2 };

static void fire_early_mask(Machine *m, int c, int row) {
    int mask = m->r_mask[row];
    for (int bit = 1; bit <= 8; bit <<= 1) {
        if (!(mask & bit)) continue;
        int sc, sp, sl;
        phys_of_slot(m, row, bit, &sc, &sp, &sl);
        if (sc == c) release_physical(m, c, sp, sl, m->cycle, 1);
    }
}

static void policy_on_commit(Machine *m, int c, int row) {
    int dc = m->r_dest_class[row];
    int dl = m->r_dest_log[row];
    i64 *rf = m->st + (c ? ST_RF_FP : ST_RF_INT);
    if (m->policy == 0) {
        if (dc == c) {
            if (m->r_rel_old[row] && m->r_allocated_new[row] &&
                m->r_old_pd[row] >= 0) {
                release_physical(m, c, m->r_old_pd[row], dl, m->cycle, 0);
                rf[RF_CONVENTIONAL]++;
            }
            m->arch_released[c][dl] = 0;
        }
        return;
    }
    if (dc == c) m->arch_released[c][dl] = 0;
    fire_early_mask(m, c, row);
    if (m->policy == 1) {
        if (dc == c && m->r_rel_old[row] && m->r_allocated_new[row] &&
            m->r_old_pd[row] >= 0) {
            release_physical(m, c, m->r_old_pd[row], dl, m->cycle, 0);
            rf[RF_CONVENTIONAL]++;
        }
    } else {
        rq_on_lu_commit(m, c, m->r_seq[row], row);
    }
}

/* The per-destination release decision at rename time. */
static int rename_destination(Machine *m, int c, int row, int logical,
                              int old_pd, i64 this_seq) {
    i64 *rf = m->st + (c ? ST_RF_FP : ST_RF_INT);
    if (m->map_stale[c][logical]) return OUT_ALLOC_NOREL;
    if (m->policy == 0) return OUT_ALLOC_REL;

    i64 lu_seq = m->lus_seq[c][logical];
    if (m->policy == 1) {
        if (lu_seq < 0) return OUT_ALLOC_REL;
        if (ck_has_pending_younger(m, lu_seq)) return OUT_ALLOC_REL;
        if (lu_seq <= m->committed_watermark) {
            if (m->reuse_on_committed_lu) {
                rf[RF_REUSES]++;
                return OUT_REUSE;
            }
            release_physical(m, c, old_pd, logical, m->cycle, 1);
            rf[RF_IMMEDIATE]++;
            return OUT_ALLOC_NOREL;
        }
        int lu_row = ros_find(m, lu_seq);
        if (lu_row < 0) return OUT_ALLOC_REL;
        int bit = (m->lus_slot[c][logical] == 3)
                      ? 8 : (1 << m->lus_slot[c][logical]);
        int sc, sp, sl;
        phys_of_slot(m, lu_row, bit, &sc, &sp, &sl);
        if (sp != old_pd) return OUT_ALLOC_REL;
        m->r_mask[lu_row] |= bit;
        rf[RF_SCHED_EARLY]++;
        return OUT_ALLOC_NOREL;
    }

    /* extended */
    int pending = (int)m->ck_count;
    if (lu_seq < 0 || lu_seq <= m->committed_watermark) {
        if (pending == 0) {
            if (m->reuse_on_committed_lu) {
                rf[RF_REUSES]++;
                return OUT_REUSE;
            }
            release_physical(m, c, old_pd, logical, m->cycle, 1);
            rf[RF_IMMEDIATE]++;
            return OUT_ALLOC_NOREL;
        }
        rq_schedule_committed(m, c, old_pd, logical, this_seq);
        rf[RF_CONDITIONAL]++;
        return OUT_ALLOC_NOREL;
    }
    int lu_row = (lu_seq == this_seq) ? row : ros_find(m, lu_seq);
    if (lu_row < 0) {
        if (pending == 0) {
            release_physical(m, c, old_pd, logical, m->cycle, 1);
            rf[RF_IMMEDIATE]++;
            return OUT_ALLOC_NOREL;
        }
        rq_schedule_committed(m, c, old_pd, logical, this_seq);
        rf[RF_CONDITIONAL]++;
        return OUT_ALLOC_NOREL;
    }
    int bit = (m->lus_slot[c][logical] == 3)
                  ? 8 : (1 << m->lus_slot[c][logical]);
    int sc, sp, sl;
    phys_of_slot(m, lu_row, bit, &sc, &sp, &sl);
    if (sp != old_pd) {
        m->status = RUN_INTERNAL;     /* Python asserts here */
        m->error = E_SLOT_MISMATCH;
        return OUT_ALLOC_NOREL;
    }
    if (pending == 0) {
        m->r_mask[lu_row] |= bit;
        rf[RF_SCHED_EARLY]++;
        return OUT_ALLOC_NOREL;
    }
    rq_schedule_inflight(m, c, lu_seq, bit, this_seq);
    rf[RF_CONDITIONAL]++;
    return OUT_ALLOC_NOREL;
}

/* Can this destination rename proceed with an empty free list? */
static int may_avoid_allocation(Machine *m, int c, int logical, DQEnt *d) {
    if (m->policy == 0) return 0;
    if (m->map_stale[c][logical]) return 0;
    for (int s = 0; s < d->nsrc; s++)
        if (d->src_class[s] == c && d->src_log[s] == logical) return 0;
    i64 lu_seq = m->lus_seq[c][logical];
    if (lu_seq < 0) return m->policy == 2 && m->ck_count == 0;
    if (ck_has_pending_younger(m, lu_seq)) return 0;
    if (lu_seq > m->committed_watermark) return 0;
    if (m->policy == 2 && m->ck_count > 0) return 0;
    return 1;
}

/* ------------------------------------------------------------------ */
/* Squash / recovery machinery.                                       */
/* ------------------------------------------------------------------ */
static void make_issue_ready(Machine *m, int row) {
    if (IS_LOAD(m->r_op[row]) &&
        lsq_park_blocked(m, m->r_seq[row], row))
        return;
    ready_add(m, row);
}

/* Undo rename effects of already-squash-marked rows (youngest first). */
static void undo_squashed(Machine *m, int *rows, i64 n) {
    m->st[ST_SQUASHED] += n;
    i64 nfreed[2] = {0, 0};
    for (i64 i = 0; i < n; i++) {
        int row = rows[i];
        int dc = m->r_dest_class[row];
        if (dc >= 0) {
            if (m->r_allocated_new[row]) {
                m->freed_reg[dc][nfreed[dc]++] = m->r_pd[row];
            } else if (m->r_reused[row]) {
                m->producer_seq[dc][m->r_pd[row]] = -1;
                m->producer_row[dc][m->r_pd[row]] = -1;
            }
        }
        wk_drop(m, row);
        ready_discard(m, row);
    }
    for (int c = 0; c < 2; c++) {
        for (i64 k = 0; k < nfreed[c]; k++) {
            int reg = m->freed_reg[c][k];
            if (!fl_push(m, c, reg)) return;
            m->producer_seq[c][reg] = -1;
            m->producer_row[c][reg] = -1;
            occ_attribute(m, c, reg, m->cycle);
            m->occ_alloc[c][reg] = -1;
            m->occ_write[c][reg] = -1;
            m->occ_lu[c][reg] = -1;
        }
        m->st[(c ? ST_RF_FP : ST_RF_INT) + RF_RELEASES] += nfreed[c];
    }
}

/* Mark everything younger than seq squashed; fills rows youngest-first. */
static i64 ros_squash_younger(Machine *m, i64 seq, int *rows) {
    i64 keep = m->ros_count;
    while (keep > 0 && m->r_seq[ROS_ROW(m, keep - 1)] > seq) keep--;
    i64 n = 0;
    for (i64 off = m->ros_count - 1; off >= keep; off--) {
        int row = ROS_ROW(m, off);
        m->r_squashed[row] = 1;
        m->r_completed[row] = 0;
        m->r_exception[row] = 0;
        rows[n++] = row;
    }
    m->ros_count = keep;
    return n;
}

static void fetch_recover(Machine *m, i64 cursor) {
    m->cursor = cursor;
    m->on_wrong_path = 0;
}

static void recover_from_misprediction(Machine *m, int row) {
    m->r_mask[row] = 0;
    i64 seq = m->r_seq[row];
    i64 n = ros_squash_younger(m, seq, m->scratch_rows);
    undo_squashed(m, m->scratch_rows, n);
    lsq_squash_younger(m, seq);
    if (m->policy == 2) {
        rq_on_branch_mispredicted(m, 0, seq);
        rq_on_branch_mispredicted(m, 1, seq);
    }
    ck_mispredict(m, seq);
    m->dq_head = 0;
    m->dq_count = 0;
    if (m->r_resume[row] >= 0) fetch_recover(m, m->r_resume[row]);
}

static void exception_flush(Machine *m, int exc_row) {
    i64 n = 0;
    for (i64 off = m->ros_count - 1; off >= 0; off--) {
        int row = ROS_ROW(m, off);
        m->r_squashed[row] = 1;
        m->r_completed[row] = 0;
        m->r_exception[row] = 0;
        m->scratch_rows[n++] = row;
    }
    m->ros_count = 0;
    undo_squashed(m, m->scratch_rows, n);
    lsq_clear(m);
    ck_squash_clear(m);
    for (int c = 0; c < 2; c++) {
        i64 nl = m->nlog[c];
        memcpy(m->map[c], m->iomt[c], (size_t)nl * sizeof(int));
        memset(m->map_stale[c], 0, (size_t)nl * sizeof(i8));
    }
    for (int c = 0; c < 2; c++) {
        i64 nl = m->nlog[c];
        for (i64 log = 0; log < nl; log++)
            if (m->arch_released[c][log]) m->map_stale[c][log] = 1;
        if (m->policy != 0) fill_i64(m->lus_seq[c], nl, -1);
        if (m->policy == 2) rq_clear(m, c);
    }
    m->dq_head = 0;
    m->dq_count = 0;
    if (m->r_resume[exc_row] >= 0) fetch_recover(m, m->r_resume[exc_row]);
}

/* ------------------------------------------------------------------ */
/* Stage: commit.                                                     */
/* ------------------------------------------------------------------ */
static void commit_stage(Machine *m) {
    i64 retire = ros_completed_prefix(m, m->cfg[CFG_COMMIT_W]);
    if (retire == 0) return;
    i64 exc_at = ros_exception_in_prefix(m, retire);
    if (exc_at >= 0) retire = exc_at + 1;
    i64 start = m->ros_head;
    /* retire_prefix removes the rows from the window first; the
     * per-entry processing below must not see them in lookups. */
    m->ros_head = (m->ros_head + retire) % m->ros_cap;
    m->ros_count -= retire;
    int last_row = -1;
    for (i64 i = 0; i < retire; i++) {
        int row = (int)((start + i) % m->ros_cap);
        m->r_completed[row] = 0;
        m->r_exception[row] = 0;
        int op = m->r_op[row];
        m->st[ST_BY_CLASS + op]++;
        m->committed_watermark = m->r_seq[row];
        int dc = m->r_dest_class[row];
        if (dc >= 0) m->iomt[dc][m->r_dest_log[row]] = m->r_pd[row];
        policy_on_commit(m, 0, row);
        policy_on_commit(m, 1, row);
        for (int s = 0; s < m->r_nsrc[row]; s++) {
            int sc = m->r_src_class[row * MAX_SRCS + s];
            m->occ_lu[sc][m->r_src_phys[row * MAX_SRCS + s]] = m->cycle;
        }
        if (dc >= 0) m->occ_lu[dc][m->r_pd[row]] = m->cycle;
        if (IS_MEM(op)) {
            if (IS_STORE(op)) MEM_DWRITE(m, m->r_addr[row]);
            lsq_remove(m, m->r_seq[row]);
        }
        last_row = row;
        if (m->status) return;
    }
    m->st[ST_COMMITTED] += retire;
    m->last_commit_cycle = m->cycle;
    if (exc_at >= 0) {
        m->st[ST_EXCEPTIONS]++;
        exception_flush(m, last_row);
    }
}

/* ------------------------------------------------------------------ */
/* Stage: writeback.                                                  */
/* ------------------------------------------------------------------ */
static void wake_consumers(Machine *m, int prow) {
    int node = m->r_wk_head[prow];
    m->r_wk_head[prow] = -1;
    m->r_wk_tail[prow] = -1;
    i64 pseq = m->r_seq[prow];
    while (node >= 0) {
        i64 cseq = m->wk_seq[node];
        int crow = m->wk_row[node];
        int next = m->wk_next[node];
        m->wk_next[node] = m->wk_free;
        m->wk_free = node;
        if (ROW_LIVE(m, crow, cseq)) {
            wait_discard(m, crow, pseq);
            if (m->r_nwait[crow] == 0 && !m->r_issued[crow])
                make_issue_ready(m, crow);
        }
        node = next;
    }
}

static void resolve_branch(Machine *m, int row) {
    int taken = m->r_taken[row];
    /* History repair compares against the predictor's own (raw) direction,
     * not the BTB-gated front-end decision — a gated-down taken prediction
     * still counts as the predictor being wrong. */
    if (m->r_has_pred[row])
        gs_resolve(m, m->r_pred_idx[row], m->r_pred_hist[row], taken,
                   m->r_pred_raw[row]);
    if (taken) btb_update(m, m->r_pc[row], m->r_target[row]);
    if (!m->r_wrong_path[row]) m->st[ST_BR_RESOLVED]++;
    if (m->r_fetch_mispred[row]) {
        m->st[ST_BR_MISPRED]++;
        recover_from_misprediction(m, row);
    } else {
        i64 seq = m->r_seq[row];
        ck_confirm(m, seq);
        if (m->policy == 2) {
            rq_on_branch_confirmed(m, 0, seq);
            if (m->status) return;
            rq_on_branch_confirmed(m, 1, seq);
        }
    }
}

static void writeback_stage(Machine *m) {
    i64 idx = m->cycle & m->cq_mask;
    int node = m->cq_bucket[idx];
    if (node < 0) return;
    m->cq_bucket[idx] = -1;
    m->cq_tail[idx] = -1;
    while (node >= 0) {
        i64 seq = m->cq_seq[node];
        int row = m->cq_row[node];
        int next = m->cq_next[node];
        m->cq_next[node] = m->cq_free;
        m->cq_free = node;
        /* Per-node liveness at processing time: a branch recovery midway
         * through this bucket squashes later same-bucket entries. */
        if (ROW_LIVE(m, row, seq)) {
            m->r_completed[row] = 1;
            int dc = m->r_dest_class[row];
            if (dc >= 0) mark_written(m, dc, m->r_pd[row], m->cycle);
            wake_consumers(m, row);
            if (IS_BRANCH(m->r_op[row])) resolve_branch(m, row);
            if (m->status) return;
        }
        node = next;
    }
}

/* ------------------------------------------------------------------ */
/* Stage: issue.                                                      */
/* ------------------------------------------------------------------ */
static void issue_stage(Machine *m) {
    if (m->rdy_count == 0) return;
    i64 width = m->cfg[CFG_ISSUE_W];
    i64 issued = 0, nblocked = 0;
    while (issued < width && m->rdy_count > 0) {
        int row = ready_pop(m);
        int op = m->r_op[row];
        i64 lat = fu_try_issue(m, op, m->cycle);
        if (lat < 0) {
            m->st[ST_STRUCTURAL]++;
            m->blocked_rows[nblocked++] = row;
            continue;
        }
        m->r_issued[row] = 1;
        issued++;
        i64 seq = m->r_seq[row];
        if (IS_MEM(op)) lsq_mark_address_known(m, seq);
        i64 at;
        if (IS_LOAD(op)) {
            i64 mem_lat = lsq_store_forwards(m, seq, m->r_addr[row])
                              ? 1 : MEM_DREAD(m, m->r_addr[row]);
            at = m->cycle + lat + mem_lat;
        } else {
            at = m->cycle + lat;
        }
        cq_schedule(m, at, seq, row);
        if (m->status) return;
    }
    for (i64 i = 0; i < nblocked; i++) ready_add(m, m->blocked_rows[i]);
}

/* ------------------------------------------------------------------ */
/* Stage: rename.                                                     */
/* ------------------------------------------------------------------ */
static int dispatch_hazard(Machine *m, DQEnt *d) {
    if (m->ros_count >= m->ros_cap) return ST_STALL_ROS;
    if (IS_MEM(d->op) && m->lsq_count >= m->lsq_cap) return ST_STALL_LSQ;
    if (IS_BRANCH(d->op) && m->ck_count >= m->ck_cap) return ST_STALL_CK;
    if (d->dest_class >= 0) {
        int c = d->dest_class;
        if (m->fl_count[c] == 0 && !may_avoid_allocation(m, c, d->dest, d))
            return c ? ST_STALL_FP : ST_STALL_INT;
    }
    return -1;
}

static void rename_one(Machine *m, DQEnt *d) {
    int row = (int)((m->ros_head + m->ros_count) % m->ros_cap);
    i64 seq = m->seq++;
    /* begin_rename: reset the row; the entry stays unpublished (count is
     * bumped at the end) so policy lookups cannot see it mid-rename. */
    wk_drop(m, row);
    m->r_seq[row] = seq;
    m->r_op[row] = d->op;
    m->r_pc[row] = d->pc;
    m->r_target[row] = d->target;
    m->r_addr[row] = d->addr;
    m->r_resume[row] = d->resume_cursor;
    m->r_pred_idx[row] = d->pred_idx;
    m->r_pred_hist[row] = d->pred_hist;
    m->r_has_pred[row] = (i8)d->has_pred;
    m->r_pred_taken[row] = (i8)d->pred_taken;
    m->r_pred_raw[row] = (i8)d->pred_raw;
    m->r_taken[row] = (i8)d->taken;
    m->r_wrong_path[row] = (i8)d->wrong_path;
    m->r_fetch_mispred[row] = (i8)d->mispredicted;
    m->r_completed[row] = 0;
    m->r_squashed[row] = 0;
    m->r_exception[row] = 0;
    m->r_issued[row] = 0;
    m->r_allocated_new[row] = 0;
    m->r_reused[row] = 0;
    m->r_rel_old[row] = 0;
    m->r_in_ready[row] = 0;
    m->r_mask[row] = 0;
    m->r_nwait[row] = 0;
    m->r_nsrc[row] = d->nsrc;
    m->r_dest_class[row] = -1;
    m->r_dest_log[row] = -1;
    m->r_pd[row] = -1;
    m->r_old_pd[row] = -1;

    for (int s = 0; s < d->nsrc; s++) {
        int rc = d->src_class[s];
        int log = d->src_log[s];
        int phys = m->map[rc][log];
        m->r_src_class[row * MAX_SRCS + s] = rc;
        m->r_src_log[row * MAX_SRCS + s] = log;
        m->r_src_phys[row * MAX_SRCS + s] = phys;
        /* A store's slot 0 is the value operand: it does not take part
         * in wakeup (stores read it at commit), but the LUs table still
         * records the read. */
        if (!(IS_STORE(d->op) && s == 0)) {
            i64 pseq = m->producer_seq[rc][phys];
            if (pseq >= 0) {
                int dup = 0;
                for (int w = 0; w < m->r_nwait[row]; w++)
                    if (m->r_wait[row * MAX_SRCS + w] == pseq) {
                        dup = 1;
                        break;
                    }
                if (!dup)
                    m->r_wait[row * MAX_SRCS + m->r_nwait[row]++] = pseq;
                wk_register(m, m->producer_row[rc][phys], seq, row);
                if (m->status) return;
            }
        }
        if (m->policy != 0) {
            m->lus_seq[rc][log] = seq;
            m->lus_slot[rc][log] = (i8)s;
        }
    }

    if (d->dest_class >= 0) {
        int c = d->dest_class, dl = d->dest;
        int old_pd = m->map[c][dl];
        int out = rename_destination(m, c, row, dl, old_pd, seq);
        if (m->status) return;
        int pd;
        if (out == OUT_REUSE) {
            pd = old_pd;
            m->r_reused[row] = 1;
            m->producer_seq[c][pd] = seq;
            m->producer_row[c][pd] = row;
        } else {
            pd = rf_allocate(m, c, m->cycle, seq, row);
            if (pd < 0) return;
            m->map[c][dl] = pd;
            m->map_stale[c][dl] = 0;
            m->r_allocated_new[row] = 1;
        }
        m->r_dest_class[row] = c;
        m->r_dest_log[row] = dl;
        m->r_pd[row] = pd;
        m->r_old_pd[row] = old_pd;
        m->r_rel_old[row] = (i8)(out == OUT_ALLOC_REL);
        if (m->policy != 0) {
            m->lus_seq[c][dl] = seq;
            m->lus_slot[c][dl] = 3;       /* DST_SLOT */
        }
    }

    if (IS_BRANCH(d->op)) {
        ck_push(m, seq);
        if (m->policy == 2) {
            rq_push_level(m, 0, seq);
            rq_push_level(m, 1, seq);
            if (m->status) return;
        }
    }
    if (IS_MEM(d->op)) lsq_insert(m, seq, IS_STORE(d->op), d->addr);

    int exception = 0;
    if (m->exc_enabled && !d->wrong_path)
        exception = m->exc_buf[m->exc_head++] < m->exception_rate;

    m->ros_count++;                       /* push: publish the entry */
    if (exception) {
        m->r_exception[row] = 1;
        m->seen_exception = 1;
    }
    m->st[ST_RENAMED]++;
    if (d->op == OP_NOP) {
        cq_schedule(m, m->cycle + 1, seq, row);
        m->r_issued[row] = 1;
    } else if (m->r_nwait[row] == 0) {
        make_issue_ready(m, row);
    }
}

static void rename_stage(Machine *m) {
    i64 width = m->cfg[CFG_RENAME_W];
    for (i64 k = 0; k < width; k++) {
        if (m->dq_count == 0) break;
        DQEnt *d = &m->dq[m->dq_head];
        if (d->ready_cycle > m->cycle) break;
        int stall = dispatch_hazard(m, d);
        if (stall >= 0) {
            m->st[stall]++;
            break;
        }
        m->dq_head = (m->dq_head + 1) % m->dq_cap;
        m->dq_count--;
        rename_one(m, d);
        if (m->status) return;
    }
}

/* ------------------------------------------------------------------ */
/* Stage: fetch.                                                      */
/* ------------------------------------------------------------------ */
static void fetch_stage(Machine *m) {
    if (m->dq_count >= m->decode_capacity) return;
    if (m->cycle < m->stall_until) return;
    /* The group's leading pc probes the I-cache even when the wrong-path
     * generator is disabled (fetch then idles on the wrong path). */
    i64 leading_pc = -1;
    int have_leading = 0;
    if (m->on_wrong_path) {
        leading_pc = m->wp_pc;
        have_leading = 1;
    } else if (m->cursor < m->trace_len) {
        leading_pc = m->t_pc[m->cursor];
        have_leading = 1;
    }
    if (have_leading) {
        i64 latency = MEM_IACCESS(m, leading_pc);
        if (latency > 1) {
            m->stall_until = m->cycle + latency;
            return;
        }
    }
    i64 fw = m->cfg[CFG_FETCH_W];
    i64 taken_seen = 0;
    for (i64 k = 0; k < fw; k++) {
        DQEnt d;
        memset(&d, 0, sizeof d);
        d.pred_idx = -1;
        d.resume_cursor = -1;
        if (m->on_wrong_path) {
            if (!m->wp_enabled) break;
            i64 pi = m->wp_head++;
            i64 pc0 = m->wp_pc;
            m->wp_pc += 4;
            d.op = (int)m->w_op[pi];
            d.pc = pc0;
            d.dest_class = (int)m->w_dc[pi];
            d.dest = (int)m->w_dest[pi];
            d.nsrc = (int)m->w_nsrc[pi];
            for (int s = 0; s < d.nsrc; s++) {
                d.src_class[s] = (int)m->w_src_class[pi * 2 + s];
                d.src_log[s] = (int)m->w_src_log[pi * 2 + s];
            }
            d.addr = m->w_addr[pi];
            d.wrong_path = 1;
            if (IS_BRANCH(d.op)) {
                i64 idx, hist;
                int pred;
                gs_predict(m, pc0, &idx, &hist, &pred);
                d.pred_raw = pred;
                if (pred && btb_lookup(m, pc0) < 0) pred = 0;
                d.has_pred = 1;
                d.pred_idx = idx;
                d.pred_hist = hist;
                d.pred_taken = pred;
                d.taken = pred;
                d.target = pred ? pc0 + m->w_tdelta[pi] * 4 : pc0 + 4;
                if (pred) m->wp_pc = d.target;
            }
        } else {
            if (m->cursor >= m->trace_len) break;
            i64 i = m->cursor++;
            d.op = (int)m->t_op[i];
            d.pc = m->t_pc[i];
            d.dest_class = (int)m->t_dc[i];
            d.dest = (int)m->t_dest[i];
            d.nsrc = (int)m->t_nsrc[i];
            for (int s = 0; s < d.nsrc; s++) {
                d.src_class[s] = (int)m->t_src_class[i * MAX_SRCS + s];
                d.src_log[s] = (int)m->t_src_log[i * MAX_SRCS + s];
            }
            d.addr = m->t_addr[i];
            d.taken = (int)m->t_taken[i];
            d.target = m->t_target[i];
            d.resume_cursor = m->cursor;
            if (IS_BRANCH(d.op)) {
                i64 idx, hist;
                int pred;
                gs_predict(m, d.pc, &idx, &hist, &pred);
                d.pred_raw = pred;
                if (pred && btb_lookup(m, d.pc) < 0) pred = 0;
                d.has_pred = 1;
                d.pred_idx = idx;
                d.pred_hist = hist;
                d.pred_taken = pred;
                d.mispredicted = (pred != d.taken);
                if (d.mispredicted) {
                    m->on_wrong_path = 1;
                    m->wp_pc = pred ? d.target : d.pc + 4;
                }
            }
        }
        d.ready_cycle = m->cycle + m->cfg[CFG_FRONTEND];
        m->dq[(m->dq_head + m->dq_count) % m->dq_cap] = d;
        m->dq_count++;
        m->st[ST_FETCHED]++;
        if (d.wrong_path) m->st[ST_FETCHED_WP]++;
        if (IS_BRANCH(d.op) && d.pred_taken) {
            taken_seen++;
            if (taken_seen >= m->cfg[CFG_MAX_TAKEN]) break;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Run loop.                                                          */
/* ------------------------------------------------------------------ */
static void finalize_stats(Machine *m) {
    if (m->finalized) return;
    m->finalized = 1;
    for (int c = 0; c < 2; c++) {
        for (i64 reg = 0; reg < m->nphys[c]; reg++)
            if (!m->fl_is_free[c][reg]) occ_attribute(m, c, reg, m->cycle);
        i64 *rf = m->st + (c ? ST_RF_FP : ST_RF_INT);
        rf[RF_OCC_EMPTY] = m->occ_empty[c];
        rf[RF_OCC_READY] = m->occ_ready[c];
        rf[RF_OCC_IDLE] = m->occ_idle[c];
    }
}

/* Warm-up pass: exact port of MachineState._warm_state.  Each warm-up
 * instruction touches the I-cache, the data caches (loads/stores) and —
 * for branches — the predictor (speculative-history predict + resolve)
 * and the BTB (update only when taken; no lookup, matching the Python
 * pass).  The warmed structures keep their contents; every statistic
 * they incremented is zeroed afterwards, exactly like the Python
 * reset_statistics() calls at the warm/measure boundary. */
static void warmup_pass(Machine *m) {
    if (m->warm_len <= 0) return;
    for (i64 i = 0; i < m->warm_len; i++) {
        int op = (int)m->wu_op[i];
        i64 pc = m->wu_pc[i];
        MEM_IACCESS(m, pc);
        if (IS_MEM(op)) {
            if (IS_STORE(op)) MEM_DWRITE(m, m->wu_addr[i]);
            else MEM_DREAD(m, m->wu_addr[i]);
        }
        if (IS_BRANCH(op)) {
            i64 idx, hist;
            int pred;
            int taken = m->wu_taken[i] != 0;
            gs_predict(m, pc, &idx, &hist, &pred);
            gs_resolve(m, idx, hist, taken, pred);
            if (taken) btb_update(m, pc, m->wu_target[i]);
        }
    }
    for (int s = ST_BTB_HITS; s <= ST_L2_MISSES; s++) m->st[s] = 0;
}

int sim_run(Machine *m) {
    if (m->status == RUN_INTERNAL) return m->status;
    if (!m->warm_done) {
        m->warm_done = 1;
        warmup_pass(m);
    }
    m->status = RUN_FINISHED;
    for (;;) {
        if (m->max_cycles >= 0 && m->cycle >= m->max_cycles) break;
        /* Refill escapes keep a full cycle's worth of draws buffered so
         * no stage ever blocks mid-cycle. */
        if (m->wp_enabled &&
            m->wp_count - m->wp_head < m->cfg[CFG_FETCH_W]) {
            m->status = RUN_NEED_WRONGPATH;
            return m->status;
        }
        if (m->exc_enabled &&
            m->exc_count - m->exc_head < m->cfg[CFG_RENAME_W]) {
            m->status = RUN_NEED_EXC;
            return m->status;
        }
        commit_stage(m);
        if (m->status) return m->status;
        writeback_stage(m);
        if (m->status) return m->status;
        issue_stage(m);
        if (m->status) return m->status;
        rename_stage(m);
        if (m->status) return m->status;
        fetch_stage(m);
        if (m->status) return m->status;
        m->cycle++;
        if (m->st[ST_COMMITTED] >= m->commit_limit) break;
        if (m->ros_count == 0 && m->dq_count == 0 &&
            m->cursor >= m->trace_len && !m->on_wrong_path)
            break;
        if (m->max_cycles >= 0 && m->cycle >= m->max_cycles) break;
        if (m->cycle - m->last_commit_cycle > m->deadlock_threshold) {
            m->status = RUN_DEADLOCK;
            return m->status;
        }
    }
    finalize_stats(m);
    return m->status;
}

/* ------------------------------------------------------------------ */
/* Construction / teardown / ABI accessors.                           */
/* ------------------------------------------------------------------ */
static void cache_init(Machine *m, CacheZ *c, i64 sets, i64 assoc,
                       i64 shift, i64 lat, int hits_slot, int misses_slot) {
    c->n_sets = sets;
    c->assoc = assoc;
    c->shift = shift;
    c->lat = lat;
    c->tag = NEW_I64(sets * assoc);
    c->dirty = NEW_I64(sets * assoc);
    c->nway = NEW_I64(sets);
    fill_i64(c->tag, sets * assoc, -1);
    c->hits = m->st + hits_slot;
    c->misses = m->st + misses_slot;
}

Machine *sim_new(const long long *cfg, int ncfg) {
    if (ncfg != NCFG) return 0;
    if (cfg[CFG_POLICY] == 2 && cfg[CFG_CK_CAP] > RQ_LEVELS_MAX)
        return 0;           /* Release Queue deeper than the compiled max */
    Machine *m = (Machine *)zmalloc(sizeof(Machine));
    if (!m) return 0;
    memcpy(m->cfg, cfg, sizeof(m->cfg));

    m->trace_len = cfg[CFG_TRACE_LEN];
    m->ros_cap = cfg[CFG_ROS];
    m->lsq_cap = cfg[CFG_LSQ];
    m->ck_cap = cfg[CFG_CK_CAP];
    m->policy = (int)cfg[CFG_POLICY];
    m->reuse_on_committed_lu = (int)cfg[CFG_REUSE];
    m->wp_enabled = (int)cfg[CFG_WP_ENABLED];
    m->exc_enabled = (int)cfg[CFG_EXC_ENABLED];
    m->nphys[0] = cfg[CFG_NPHYS_INT];
    m->nphys[1] = cfg[CFG_NPHYS_FP];
    m->nlog[0] = cfg[CFG_NLOG_INT];
    m->nlog[1] = cfg[CFG_NLOG_FP];
    m->mem_lat = cfg[CFG_MEM_LAT];
    m->wp_cap = cfg[CFG_WP_CAP];
    m->exc_cap = cfg[CFG_EXC_CAP];

    m->max_cycles = -1;
    m->commit_limit = m->trace_len;
    m->deadlock_threshold = 50000;
    m->committed_watermark = -1;

    /* trace columns */
    i64 tl = m->trace_len > 0 ? m->trace_len : 1;
    m->t_op = NEW_I64(tl);
    m->t_pc = NEW_I64(tl);
    m->t_dc = NEW_I64(tl);
    m->t_dest = NEW_I64(tl);
    m->t_nsrc = NEW_I64(tl);
    m->t_src_class = NEW_I64(tl * MAX_SRCS);
    m->t_src_log = NEW_I64(tl * MAX_SRCS);
    m->t_taken = NEW_I64(tl);
    m->t_target = NEW_I64(tl);
    m->t_addr = NEW_I64(tl);

    /* warm-up trace columns */
    m->warm_len = cfg[CFG_WARM_LEN];
    i64 wl = m->warm_len > 0 ? m->warm_len : 1;
    m->wu_op = NEW_I64(wl);
    m->wu_pc = NEW_I64(wl);
    m->wu_addr = NEW_I64(wl);
    m->wu_taken = NEW_I64(wl);
    m->wu_target = NEW_I64(wl);

    /* wrong-path payload buffer */
    i64 wc = m->wp_cap > 0 ? m->wp_cap : 1;
    m->w_op = NEW_I64(wc);
    m->w_dc = NEW_I64(wc);
    m->w_dest = NEW_I64(wc);
    m->w_nsrc = NEW_I64(wc);
    m->w_src_class = NEW_I64(wc * 2);
    m->w_src_log = NEW_I64(wc * 2);
    m->w_addr = NEW_I64(wc);
    m->w_tdelta = NEW_I64(wc);

    /* exception lottery */
    i64 ec = m->exc_cap > 0 ? m->exc_cap : 1;
    m->exc_buf = (double *)zmalloc((size_t)ec * sizeof(double));

    /* gshare */
    m->gs_size = 1LL << cfg[CFG_GSHARE_BITS];
    m->gs_mask = m->gs_size - 1;
    m->gs_table = NEW_I8(m->gs_size);
    memset(m->gs_table, 2, (size_t)m->gs_size);

    /* BTB */
    m->btb_sets = cfg[CFG_BTB_SETS];
    m->btb_assoc = cfg[CFG_BTB_ASSOC];
    m->btb_tag = NEW_I64(m->btb_sets * m->btb_assoc);
    m->btb_target = NEW_I64(m->btb_sets * m->btb_assoc);
    m->btb_nway = NEW_I64(m->btb_sets);
    fill_i64(m->btb_tag, m->btb_sets * m->btb_assoc, -1);

    /* caches */
    cache_init(m, &m->l1i, cfg[CFG_L1I_SETS], cfg[CFG_L1I_ASSOC],
               cfg[CFG_L1I_SHIFT], cfg[CFG_L1I_LAT], ST_L1I_HITS,
               ST_L1I_MISSES);
    cache_init(m, &m->l1d, cfg[CFG_L1D_SETS], cfg[CFG_L1D_ASSOC],
               cfg[CFG_L1D_SHIFT], cfg[CFG_L1D_LAT], ST_L1D_HITS,
               ST_L1D_MISSES);
    cache_init(m, &m->l2, cfg[CFG_L2_SETS], cfg[CFG_L2_ASSOC],
               cfg[CFG_L2_SHIFT], cfg[CFG_L2_LAT], ST_L2_HITS,
               ST_L2_MISSES);

    /* functional units */
    i64 fu_total = 0;
    for (int k = 0; k < 6; k++) {
        m->fu_count[k] = cfg[CFG_FU + 2 * k];
        m->fu_unpip[k] = cfg[CFG_FU + 2 * k + 1];
        m->fu_last_cycle[k] = -1;
        m->fu_off[k] = fu_total;
        fu_total += m->fu_count[k];
    }
    m->fu_free_at = NEW_I64(fu_total > 0 ? fu_total : 1);
    for (int op = 0; op < N_OPS; op++) m->op_lat[op] = cfg[CFG_OP_LAT + op];

    /* register files */
    for (int c = 0; c < 2; c++) {
        i64 np = m->nphys[c], nl = m->nlog[c];
        m->fl_ring[c] = NEW_INT(np);
        m->fl_is_free[c] = NEW_I8(np);
        m->producer_seq[c] = NEW_I64(np);
        m->producer_row[c] = NEW_INT(np);
        m->occ_alloc[c] = NEW_I64(np);
        m->occ_write[c] = NEW_I64(np);
        m->occ_lu[c] = NEW_I64(np);
        m->map[c] = NEW_INT(nl);
        m->iomt[c] = NEW_INT(nl);
        m->map_stale[c] = NEW_I8(nl);
        m->arch_released[c] = NEW_I8(nl);
        m->lus_seq[c] = NEW_I64(nl);
        m->lus_slot[c] = NEW_I8(nl);

        fill_i64(m->producer_seq[c], np, -1);
        fill_int(m->producer_row[c], np, -1);
        fill_i64(m->occ_alloc[c], np, -1);
        fill_i64(m->occ_write[c], np, -1);
        fill_i64(m->occ_lu[c], np, -1);
        fill_i64(m->lus_seq[c], nl, -1);
        for (i64 log = 0; log < nl; log++) {
            m->map[c][log] = (int)log;
            m->iomt[c][log] = (int)log;
            /* initial architectural mappings: occupied from cycle 0,
             * written, never read yet; not counted as allocations */
            m->occ_alloc[c][log] = 0;
            m->occ_write[c][log] = 0;
        }
        m->fl_head[c] = 0;
        m->fl_count[c] = np - nl;
        for (i64 i = nl; i < np; i++) {
            m->fl_ring[c][i - nl] = (int)i;
            m->fl_is_free[c][i] = 1;
        }
    }

    /* ROS rows */
    i64 rc = m->ros_cap;
    m->r_seq = NEW_I64(rc);
    m->r_pc = NEW_I64(rc);
    m->r_target = NEW_I64(rc);
    m->r_addr = NEW_I64(rc);
    m->r_resume = NEW_I64(rc);
    m->r_pred_idx = NEW_I64(rc);
    m->r_pred_hist = NEW_I64(rc);
    m->r_op = NEW_INT(rc);
    m->r_dest_class = NEW_INT(rc);
    m->r_dest_log = NEW_INT(rc);
    m->r_pd = NEW_INT(rc);
    m->r_old_pd = NEW_INT(rc);
    m->r_mask = NEW_INT(rc);
    m->r_nsrc = NEW_INT(rc);
    m->r_src_class = NEW_INT(rc * MAX_SRCS);
    m->r_src_log = NEW_INT(rc * MAX_SRCS);
    m->r_src_phys = NEW_INT(rc * MAX_SRCS);
    m->r_completed = NEW_I8(rc);
    m->r_squashed = NEW_I8(rc);
    m->r_exception = NEW_I8(rc);
    m->r_issued = NEW_I8(rc);
    m->r_wrong_path = NEW_I8(rc);
    m->r_fetch_mispred = NEW_I8(rc);
    m->r_pred_taken = NEW_I8(rc);
    m->r_pred_raw = NEW_I8(rc);
    m->r_has_pred = NEW_I8(rc);
    m->r_taken = NEW_I8(rc);
    m->r_allocated_new = NEW_I8(rc);
    m->r_reused = NEW_I8(rc);
    m->r_rel_old = NEW_I8(rc);
    m->r_in_ready = NEW_I8(rc);
    m->r_nwait = NEW_INT(rc);
    m->r_wait = NEW_I64(rc * MAX_SRCS);
    m->r_wk_head = NEW_INT(rc);
    m->r_wk_tail = NEW_INT(rc);
    fill_i64(m->r_seq, rc, -1);
    fill_int(m->r_wk_head, rc, -1);
    fill_int(m->r_wk_tail, rc, -1);

    /* ready heap */
    m->heap_cap = 4 * rc;
    m->heap_seq = NEW_I64(m->heap_cap);
    m->heap_row = NEW_INT(m->heap_cap);

    /* wakeup pool */
    m->wk_cap = 8 * rc;
    m->wk_seq = NEW_I64(m->wk_cap);
    m->wk_row = NEW_INT(m->wk_cap);
    m->wk_next = NEW_INT(m->wk_cap);
    for (i64 i = 0; i < m->wk_cap; i++)
        m->wk_next[i] = (int)(i + 1 < m->wk_cap ? i + 1 : -1);
    m->wk_free = 0;

    /* completion queue */
    i64 max_op_lat = 0;
    for (int op = 0; op < N_OPS; op++)
        if (m->op_lat[op] > max_op_lat) max_op_lat = m->op_lat[op];
    i64 horizon = max_op_lat + m->l1d.lat + m->l2.lat + m->mem_lat + 8;
    m->cq_ring = next_pow2(horizon > 256 ? horizon : 256);
    m->cq_mask = m->cq_ring - 1;
    m->cq_bucket = NEW_INT(m->cq_ring);
    m->cq_tail = NEW_INT(m->cq_ring);
    fill_int(m->cq_bucket, m->cq_ring, -1);
    fill_int(m->cq_tail, m->cq_ring, -1);
    m->cq_cap = 4 * rc + 64;
    m->cq_seq = NEW_I64(m->cq_cap);
    m->cq_row = NEW_INT(m->cq_cap);
    m->cq_next = NEW_INT(m->cq_cap);
    for (i64 i = 0; i < m->cq_cap; i++)
        m->cq_next[i] = (int)(i + 1 < m->cq_cap ? i + 1 : -1);
    m->cq_free = 0;

    /* LSQ */
    i64 lc = m->lsq_cap > 0 ? m->lsq_cap : 1;
    m->l_seq = NEW_I64(lc);
    m->l_addr = NEW_I64(lc);
    m->l_is_store = NEW_I8(lc);
    m->l_known = NEW_I8(lc);
    m->l_whead = NEW_INT(lc);
    m->l_wtail = NEW_INT(lc);
    fill_int(m->l_whead, lc, -1);
    fill_int(m->l_wtail, lc, -1);
    m->lw_cap = 4 * rc;
    m->lw_seq = NEW_I64(m->lw_cap);
    m->lw_row = NEW_INT(m->lw_cap);
    m->lw_next = NEW_INT(m->lw_cap);
    for (i64 i = 0; i < m->lw_cap; i++)
        m->lw_next[i] = (int)(i + 1 < m->lw_cap ? i + 1 : -1);
    m->lw_free = 0;

    /* checkpoints */
    i64 kc = m->ck_cap > 0 ? m->ck_cap : 1;
    m->ck_order = NEW_INT(kc);
    m->ck_freestack = NEW_INT(kc);
    m->ck_seq = NEW_I64(kc);
    for (i64 i = 0; i < kc; i++) m->ck_freestack[i] = (int)i;
    m->ck_nfree = m->ck_cap;
    for (int c = 0; c < 2; c++) {
        i64 nl = m->nlog[c];
        m->ck_map[c] = NEW_INT(kc * nl);
        m->ck_stale[c] = NEW_I8(kc * nl);
        m->ck_lus_seq[c] = NEW_I64(kc * nl);
        m->ck_lus_slot[c] = NEW_I8(kc * nl);
    }

    /* release queues (extended only): depth = checkpoint capacity
     * (ProcessorConfig.max_pending_branches), not a hardwired constant */
    if (m->policy == 2) {
        i64 npmax = m->nphys[0] > m->nphys[1] ? m->nphys[0] : m->nphys[1];
        m->rq_levels = m->ck_cap > 0 ? m->ck_cap : 1;
        m->rq_rwns_cap = 2 * npmax + rc;
        m->rq_rwc_cap = rc;
        for (int c = 0; c < 2; c++) {
            m->rq_slots[c] = (RQLevel *)zmalloc(
                (size_t)m->rq_levels * sizeof(RQLevel));
            m->rq_order[c] = NEW_INT(m->rq_levels);
            m->rq_freestack[c] = NEW_INT(m->rq_levels);
            for (i64 s = 0; s < m->rq_levels; s++) {
                RQLevel *lv = &m->rq_slots[c][s];
                lv->rwns_phys = NEW_INT(m->rq_rwns_cap);
                lv->rwns_log = NEW_INT(m->rq_rwns_cap);
                lv->rwns_nv = NEW_I64(m->rq_rwns_cap);
                lv->rwc_lu = NEW_I64(m->rq_rwc_cap);
                lv->rwc_nbits = NEW_INT(m->rq_rwc_cap);
                lv->rwc_bits = NEW_INT(m->rq_rwc_cap * 4);
                lv->rwc_nv = NEW_I64(m->rq_rwc_cap * 4);
                m->rq_freestack[c][s] = (int)s;
            }
            m->rq_nfree[c] = (int)m->rq_levels;
        }
    }

    /* decode queue */
    m->decode_capacity = (cfg[CFG_FRONTEND] + 2) * cfg[CFG_FETCH_W];
    m->dq_cap = m->decode_capacity + cfg[CFG_FETCH_W];
    m->dq = (DQEnt *)zmalloc((size_t)m->dq_cap * sizeof(DQEnt));

    /* scratch */
    m->scratch_rows = NEW_INT(rc);
    m->blocked_rows = NEW_INT(rc);
    m->freed_reg[0] = NEW_INT(rc);
    m->freed_reg[1] = NEW_INT(rc);

    return m;
}

void sim_free(Machine *m) {
    if (!m) return;
    free(m->t_op); free(m->t_pc); free(m->t_dc); free(m->t_dest);
    free(m->t_nsrc); free(m->t_src_class); free(m->t_src_log);
    free(m->t_taken); free(m->t_target); free(m->t_addr);
    free(m->wu_op); free(m->wu_pc); free(m->wu_addr);
    free(m->wu_taken); free(m->wu_target);
    free(m->w_op); free(m->w_dc); free(m->w_dest); free(m->w_nsrc);
    free(m->w_src_class); free(m->w_src_log); free(m->w_addr);
    free(m->w_tdelta);
    free(m->exc_buf);
    free(m->gs_table);
    free(m->btb_tag); free(m->btb_target); free(m->btb_nway);
    free(m->l1i.tag); free(m->l1i.dirty); free(m->l1i.nway);
    free(m->l1d.tag); free(m->l1d.dirty); free(m->l1d.nway);
    free(m->l2.tag); free(m->l2.dirty); free(m->l2.nway);
    free(m->fu_free_at);
    for (int c = 0; c < 2; c++) {
        free(m->fl_ring[c]); free(m->fl_is_free[c]);
        free(m->producer_seq[c]); free(m->producer_row[c]);
        free(m->occ_alloc[c]); free(m->occ_write[c]); free(m->occ_lu[c]);
        free(m->map[c]); free(m->iomt[c]); free(m->map_stale[c]);
        free(m->arch_released[c]); free(m->lus_seq[c]); free(m->lus_slot[c]);
        free(m->ck_map[c]); free(m->ck_stale[c]);
        free(m->ck_lus_seq[c]); free(m->ck_lus_slot[c]);
        if (m->policy == 2) {
            for (i64 s = 0; s < m->rq_levels; s++) {
                RQLevel *lv = &m->rq_slots[c][s];
                free(lv->rwns_phys); free(lv->rwns_log); free(lv->rwns_nv);
                free(lv->rwc_lu); free(lv->rwc_nbits);
                free(lv->rwc_bits); free(lv->rwc_nv);
            }
            free(m->rq_slots[c]); free(m->rq_order[c]);
            free(m->rq_freestack[c]);
        }
        free(m->freed_reg[c]);
    }
    free(m->r_seq); free(m->r_pc); free(m->r_target); free(m->r_addr);
    free(m->r_resume); free(m->r_pred_idx); free(m->r_pred_hist);
    free(m->r_op); free(m->r_dest_class); free(m->r_dest_log);
    free(m->r_pd); free(m->r_old_pd); free(m->r_mask); free(m->r_nsrc);
    free(m->r_src_class); free(m->r_src_log); free(m->r_src_phys);
    free(m->r_completed); free(m->r_squashed); free(m->r_exception);
    free(m->r_issued); free(m->r_wrong_path); free(m->r_fetch_mispred);
    free(m->r_pred_taken); free(m->r_pred_raw); free(m->r_has_pred);
    free(m->r_taken);
    free(m->r_allocated_new); free(m->r_reused); free(m->r_rel_old);
    free(m->r_in_ready); free(m->r_nwait); free(m->r_wait);
    free(m->r_wk_head); free(m->r_wk_tail);
    free(m->heap_seq); free(m->heap_row);
    free(m->wk_seq); free(m->wk_row); free(m->wk_next);
    free(m->cq_bucket); free(m->cq_tail);
    free(m->cq_seq); free(m->cq_row); free(m->cq_next);
    free(m->l_seq); free(m->l_addr); free(m->l_is_store); free(m->l_known);
    free(m->l_whead); free(m->l_wtail);
    free(m->lw_seq); free(m->lw_row); free(m->lw_next);
    free(m->ck_order); free(m->ck_freestack); free(m->ck_seq);
    free(m->dq);
    free(m->scratch_rows); free(m->blocked_rows);
    free(m);
}

long long *sim_i64(Machine *m, int which) {
    switch (which) {
    case A_T_OP: return m->t_op;
    case A_T_PC: return m->t_pc;
    case A_T_DC: return m->t_dc;
    case A_T_DEST: return m->t_dest;
    case A_T_NSRC: return m->t_nsrc;
    case A_T_SRC_CLASS: return m->t_src_class;
    case A_T_SRC_LOG: return m->t_src_log;
    case A_T_TAKEN: return m->t_taken;
    case A_T_TARGET: return m->t_target;
    case A_T_ADDR: return m->t_addr;
    case A_W_OP: return m->w_op;
    case A_W_DC: return m->w_dc;
    case A_W_DEST: return m->w_dest;
    case A_W_NSRC: return m->w_nsrc;
    case A_W_SRC_CLASS: return m->w_src_class;
    case A_W_SRC_LOG: return m->w_src_log;
    case A_W_ADDR: return m->w_addr;
    case A_W_TDELTA: return m->w_tdelta;
    case A_B_TAG: return m->btb_tag;
    case A_B_TARGET: return m->btb_target;
    case A_B_NWAY: return m->btb_nway;
    case A_L1I_TAG: return m->l1i.tag;
    case A_L1I_DIRTY: return m->l1i.dirty;
    case A_L1I_NWAY: return m->l1i.nway;
    case A_L1D_TAG: return m->l1d.tag;
    case A_L1D_DIRTY: return m->l1d.dirty;
    case A_L1D_NWAY: return m->l1d.nway;
    case A_L2_TAG: return m->l2.tag;
    case A_L2_DIRTY: return m->l2.dirty;
    case A_L2_NWAY: return m->l2.nway;
    case A_STATS: return m->st;
    case A_WU_OP: return m->wu_op;
    case A_WU_PC: return m->wu_pc;
    case A_WU_ADDR: return m->wu_addr;
    case A_WU_TAKEN: return m->wu_taken;
    case A_WU_TARGET: return m->wu_target;
    }
    return 0;
}

double *sim_f64(Machine *m, int which) {
    if (which == 0) return m->exc_buf;
    return 0;
}

signed char *sim_i8(Machine *m, int which) {
    if (which == 0) return m->gs_table;
    return 0;
}

long long sim_get(Machine *m, int which) {
    switch (which) {
    case SC_STATUS: return m->status;
    case SC_ERROR: return m->error;
    case SC_CYCLE: return m->cycle;
    case SC_MAX_CYCLES: return m->max_cycles;
    case SC_COMMIT_LIMIT: return m->commit_limit;
    case SC_DEADLOCK: return m->deadlock_threshold;
    case SC_WP_COUNT: return m->wp_count;
    case SC_WP_HEAD: return m->wp_head;
    case SC_EXC_COUNT: return m->exc_count;
    case SC_EXC_HEAD: return m->exc_head;
    case SC_GS_HISTORY: return m->gs_history;
    case SC_READY_PEAK: return m->ready_peak;
    case SC_SEQ: return m->seq;
    case SC_ABI_MAGIC: return ABI_MAGIC;
    }
    return -1;
}

void sim_set(Machine *m, int which, long long value) {
    switch (which) {
    case SC_CYCLE: m->cycle = value; break;
    case SC_MAX_CYCLES: m->max_cycles = value; break;
    case SC_COMMIT_LIMIT: m->commit_limit = value; break;
    case SC_DEADLOCK: m->deadlock_threshold = value; break;
    case SC_WP_COUNT: m->wp_count = value; break;
    case SC_WP_HEAD: m->wp_head = value; break;
    case SC_EXC_COUNT: m->exc_count = value; break;
    case SC_EXC_HEAD: m->exc_head = value; break;
    case SC_GS_HISTORY: m->gs_history = value; break;
    case SC_SEQ: m->seq = value; break;
    }
}

void sim_setf(Machine *m, int which, double value) {
    if (which == 0) m->exception_rate = value;
}
