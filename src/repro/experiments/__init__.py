"""Experiment harness: one module per table/figure of the paper.

=================  ===========================================================
Module             Regenerates
=================  ===========================================================
``table1``         Table 1 — survey of commercial merged-register-file CPUs
``figure2``        Figure 2 — physical-register state lifecycle example
``figure3``        Figure 3 — Empty/Ready/Idle occupancy under conventional
                   renaming (96 registers)
``section33``      Section 3.3 — basic-mechanism speedups at 64/48/40 registers
``figure9``        Figure 9 — LUs Table vs register file access time / energy
``figure10``       Figure 10 — per-benchmark IPC at 48+48 registers
``figure11``       Figure 11 — harmonic-mean IPC vs register file size
``table4``         Table 4 — register file sizes giving equal IPC
``section44``      Section 4.4 — energy neutrality and storage cost
``scenarios``      Scenario grid — the workload scenario library under the
                   three policies (not a paper artefact)
``scenario_occupancy``  Per-phase Empty/Ready/Idle occupancy splits of the
                   scenario library (Figure 3 style; not a paper artefact)
=================  ===========================================================

Every module exposes ``run(...)`` returning a result object with a
``format()`` method; ``repro.experiments.runner`` provides the
``repro-experiments`` command-line entry point that runs any subset and
prints the regenerated artefacts.
"""

from repro.experiments import (  # noqa: F401  (re-exported for convenience)
    figure2,
    figure3,
    figure9,
    figure10,
    figure11,
    scenario_occupancy,
    scenarios,
    section33,
    section44,
    table1,
    table4,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = [
    "table1",
    "figure2",
    "figure3",
    "figure9",
    "figure10",
    "figure11",
    "scenario_occupancy",
    "scenarios",
    "section33",
    "section44",
    "table4",
    "EXPERIMENTS",
    "run_experiment",
]
