"""Table 1 — out-of-order processors with merged register files.

The table is a survey of four commercial processors (MIPS R10K, MIPS
R12K, Alpha 21264, Intel Pentium 4): physical register counts, port
counts, and the size/name of the structure that reorders uncommitted
instructions.  It motivates the paper's loose/tight classification
(P ≥ L + N vs P < L + N), which this module also reports for each entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.reporting import format_table


@dataclass(frozen=True)
class ProcessorSurveyEntry:
    """One column of Table 1.

    ``paper_classification`` records how Section 2 of the paper classifies
    the integer file ("loose" or "tight"); :attr:`is_loose` is the strict
    P ≥ L + N check, which agrees with the paper except for the Pentium 4
    borderline case the paper itself hedges on (flag-register renaming).
    """

    name: str
    int_physical: int
    int_ports: str
    fp_physical: int
    fp_ports: str
    reorder_size: int
    reorder_name: str
    logical_int: int = 32
    paper_classification: str = "tight"

    @property
    def is_loose(self) -> bool:
        """Paper Section 2: loose ⇔ P ≥ L + N (never stalls for registers)."""
        return self.int_physical >= self.logical_int + self.reorder_size


#: The four processors of Table 1 (values transcribed from the paper).
#: The Alpha 21264's two banks of 80 registers are *replicas* of the same
#: architectural content, so the effective capacity is 80 (hence tight).
TABLE1_ENTRIES: Tuple[ProcessorSurveyEntry, ...] = (
    ProcessorSurveyEntry("MIPS R10K", 64, "7R 3W", 64, "5R 3W", 32, "Active List",
                         paper_classification="loose"),
    ProcessorSurveyEntry("MIPS R12K", 64, "7R 3W", 64, "5R 3W", 48, "Active List",
                         paper_classification="tight"),
    ProcessorSurveyEntry("Alpha 21264", 80, "2x (4R 6W), replicated", 72, "6R 4W",
                         80, "In-Flight Window", paper_classification="tight"),
    ProcessorSurveyEntry("Intel P4", 128, "n.a.", 128, "n.a.", 126,
                         "Reorder Buffer", logical_int=8,
                         paper_classification="loose"),
)


@dataclass
class Table1Result:
    """Regenerated Table 1 plus the loose/tight classification."""

    entries: Tuple[ProcessorSurveyEntry, ...] = TABLE1_ENTRIES

    def rows(self) -> List[List[object]]:
        """Rows of the rendered table."""
        return [[entry.name, entry.int_physical, entry.int_ports,
                 entry.fp_physical, entry.fp_ports, entry.reorder_size,
                 entry.reorder_name, entry.paper_classification]
                for entry in self.entries]

    def entry(self, name: str) -> Optional[ProcessorSurveyEntry]:
        """Look up one processor by name."""
        for candidate in self.entries:
            if candidate.name == name:
                return candidate
        return None

    def format(self) -> str:
        """Render the table as text."""
        return format_table(
            ["Processor", "P int", "T int", "P fp", "T fp", "N", "Reorder structure",
             "int file class"],
            self.rows(),
            title="Table 1: out-of-order processors with merged register files",
        )


def run() -> Table1Result:
    """Regenerate Table 1 (static data; no simulation required)."""
    return Table1Result()
