"""Figure 11 — harmonic-mean IPC vs physical register file size.

Two panels (integer suite and FP suite), three curves each (conventional,
basic, extended), register file sizes from 40 to 160.  The paper's
headline observations, all of which the reproduction should show:

* with a loose file (P ≥ L + N) the three policies coincide;
* for tight files early release always wins, with gains growing as the
  file shrinks;
* FP codes benefit over a wide size range (≈40–104 registers), integer
  codes only for very tight files (≈40–64);
* the extended mechanism is clearly better than the basic one on integer
  codes, while the two are close on FP codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.analysis.metrics import percentage_speedup
from repro.analysis.reporting import format_series
from repro.analysis.sweep import SweepConfig, SweepResult, run_sweep
from repro.pipeline.config import ProcessorConfig
from repro.trace.workloads import fp_workloads, integer_workloads

POLICIES = ("conv", "basic", "extended")

#: Register-file sizes of the published figure.
PAPER_SIZES = (40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 160)

#: Default (coarser) grid used by the experiment harness; covers the same
#: range with fewer cycle-level simulations.
DEFAULT_SIZES = (40, 48, 56, 64, 72, 80, 96, 112, 128, 160)


@dataclass
class Figure11Result:
    """Harmonic-mean IPC curves per suite and policy."""

    sizes: Tuple[int, ...]
    sweep: SweepResult
    int_benchmarks: List[str] = field(default_factory=list)
    fp_benchmarks: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def curve(self, suite: str, policy: str) -> List[Tuple[int, float]]:
        """(register size, harmonic-mean IPC) curve of one suite and policy."""
        benchmarks = self.int_benchmarks if suite == "int" else self.fp_benchmarks
        return [(size, self.sweep.harmonic_mean_ipc(benchmarks, policy, size))
                for size in self.sizes]

    def speedup_percent(self, suite: str, policy: str, size: int) -> float:
        """Suite speedup of ``policy`` over conventional at one size."""
        benchmarks = self.int_benchmarks if suite == "int" else self.fp_benchmarks
        return percentage_speedup(
            self.sweep.harmonic_mean_ipc(benchmarks, policy, size),
            self.sweep.harmonic_mean_ipc(benchmarks, "conv", size))

    def speedup_curve(self, suite: str, policy: str) -> List[Tuple[int, float]]:
        """Speedup-over-conventional as a function of register file size."""
        return [(size, self.speedup_percent(suite, policy, size))
                for size in self.sizes]

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Render both panels plus the speedup summaries."""
        sections: List[str] = []
        for suite, label in (("int", "Integer"), ("fp", "FP")):
            series = {policy: [(float(size), ipc) for size, ipc in
                               self.curve(suite, policy)]
                      for policy in POLICIES}
            sections.append(format_series(
                series, "registers", "IPC",
                title=f"Figure 11 ({label}): harmonic-mean IPC vs register file size"))
            speedups = {policy: [(float(size), pct) for size, pct in
                                 self.speedup_curve(suite, policy)]
                        for policy in ("basic", "extended")}
            sections.append(format_series(
                speedups, "registers", "speedup %",
                title=f"{label}: speedup over conventional (%)", float_digits=1))
            sections.append("")
        return "\n".join(sections)


def run(trace_length: int = 20_000, sizes: Sequence[int] = DEFAULT_SIZES,
        parallel: bool = True, benchmarks: Optional[List[str]] = None,
        base_config: Optional[ProcessorConfig] = None,
        cache=None) -> Figure11Result:
    """Regenerate Figure 11 (the full benchmark × policy × size sweep).

    ``cache`` is forwarded to :func:`repro.analysis.sweep.run_sweep`:
    already-simulated points are served from the on-disk result cache, so
    regenerating the figure after a partial sweep (or with a finer size
    grid) only simulates the missing points.
    """
    int_names = [name for name in integer_workloads()
                 if benchmarks is None or name in benchmarks]
    fp_names = [name for name in fp_workloads()
                if benchmarks is None or name in benchmarks]
    sweep = run_sweep(SweepConfig(
        benchmarks=tuple(int_names + fp_names),
        policies=POLICIES,
        register_sizes=tuple(sizes),
        trace_length=trace_length,
        base_config=base_config or ProcessorConfig()),
        parallel=parallel, cache=cache)
    return Figure11Result(sizes=tuple(sizes), sweep=sweep,
                          int_benchmarks=int_names, fp_benchmarks=fp_names)
