"""Section 4.4 — energy neutrality and storage cost of the extended mechanism.

Two claims are reproduced:

1. **Energy neutrality.**  Using early release to shrink the register
   files from 64int+79fp to 56int+72fp while keeping IPC, the energy of
   the smaller files *plus* the two LUs Tables matches the energy of the
   original files:  E_conv ≈ 3850 pJ vs E_early ≈ 3851 pJ.
2. **Storage cost.**  On an Alpha-21264-like machine (ROS = 80,
   152 physical registers, 20 pending branches) the extended mechanism
   needs about 1.22 KB of state, plus ≈128 B for the two LUs Tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.reporting import format_table
from repro.power.rixner_model import RixnerModel
from repro.power.storage import StorageModel

#: Paper values for the energy comparison (pJ).
PAPER_E_CONV_PJ = 3850.0
PAPER_E_EARLY_PJ = 3851.0
#: Paper values for the storage cost (bytes).
PAPER_EXTENDED_STORAGE_BYTES = 1.22 * 1024
PAPER_LUS_TABLES_BYTES = 128.0


@dataclass
class Section44Result:
    """Measured energy-neutrality and storage numbers."""

    energy_conv_pj: float
    energy_early_pj: float
    extended_storage_bytes: float
    lus_tables_bytes: float

    @property
    def energy_ratio(self) -> float:
        """E_early / E_conv (the paper's point: ≈ 1.0, i.e. energy neutral)."""
        return self.energy_early_pj / self.energy_conv_pj

    def format(self) -> str:
        """Render the comparison against the paper's numbers."""
        energy_rows: List[List[object]] = [
            ["E(RF64int + RF79fp)", f"{self.energy_conv_pj:.0f} pJ",
             f"{PAPER_E_CONV_PJ:.0f} pJ"],
            ["E(RF56int + RF72fp + 2 LUs Tables)", f"{self.energy_early_pj:.0f} pJ",
             f"{PAPER_E_EARLY_PJ:.0f} pJ"],
            ["ratio (early / conv)", f"{self.energy_ratio:.3f}", "1.000"],
        ]
        storage_rows: List[List[object]] = [
            ["extended mechanism (Alpha-21264-like)",
             f"{self.extended_storage_bytes:.0f} B",
             f"{PAPER_EXTENDED_STORAGE_BYTES:.0f} B"],
            ["int + FP LUs Tables", f"{self.lus_tables_bytes:.0f} B",
             f"{PAPER_LUS_TABLES_BYTES:.0f} B"],
        ]
        return "\n\n".join([
            format_table(["quantity", "measured", "paper"], energy_rows,
                         title="Section 4.4: energy neutrality of early release"),
            format_table(["structure", "measured", "paper"], storage_rows,
                         title="Section 4.4: storage cost of the extended mechanism"),
        ])


def run() -> Section44Result:
    """Regenerate the Section 4.4 energy and storage comparison."""
    model = RixnerModel()
    energy_conv = model.configuration_energy_pj(64, 79, include_lus_tables=False)
    energy_early = model.configuration_energy_pj(56, 72, include_lus_tables=True)
    storage = StorageModel(ros_size=80, num_physical_int=80, num_physical_fp=72,
                           max_pending_branches=20)
    return Section44Result(
        energy_conv_pj=energy_conv,
        energy_early_pj=energy_early,
        extended_storage_bytes=storage.extended_mechanism_bytes(),
        lus_tables_bytes=storage.lus_tables_bytes(),
    )
