"""Figure 10 — per-benchmark IPC with a very tight 48int + 48FP register file.

Conventional release vs the basic and extended mechanisms, for all ten
benchmarks plus the harmonic mean of each suite.  The paper's headline:
with 48+48 registers, *basic* gives about +6 % (FP) and ~0 % (integer)
over conventional, *extended* about +8 % (FP) and +5 % (integer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.metrics import percentage_speedup
from repro.analysis.reporting import format_table
from repro.analysis.sweep import SweepConfig, SweepResult, run_sweep
from repro.pipeline.config import ProcessorConfig
from repro.trace.workloads import fp_workloads, integer_workloads

#: Suite-level speedups over conventional quoted in Section 5.1 (percent).
PAPER_SPEEDUPS_PERCENT = {
    ("fp", "basic"): 6.0,
    ("fp", "extended"): 8.0,
    ("int", "basic"): 0.0,
    ("int", "extended"): 5.0,
}

POLICIES = ("conv", "basic", "extended")


@dataclass
class Figure10Result:
    """IPC per benchmark and policy at one register-file size."""

    num_registers: int
    sweep: SweepResult
    int_benchmarks: List[str] = field(default_factory=list)
    fp_benchmarks: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def ipc(self, benchmark: str, policy: str) -> float:
        """IPC of one benchmark under one policy."""
        return self.sweep.ipc(benchmark, policy, self.num_registers)

    def harmonic_mean(self, suite: str, policy: str) -> float:
        """Harmonic-mean IPC of one suite under one policy."""
        benchmarks = self.int_benchmarks if suite == "int" else self.fp_benchmarks
        return self.sweep.harmonic_mean_ipc(benchmarks, policy, self.num_registers)

    def suite_speedup_percent(self, suite: str, policy: str) -> float:
        """Suite harmonic-mean speedup of ``policy`` over conventional."""
        return percentage_speedup(self.harmonic_mean(suite, policy),
                                  self.harmonic_mean(suite, "conv"))

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Render both panels of the figure plus the paper comparison."""
        sections: List[str] = []
        for suite, label, benchmarks in (
                ("int", "Integer", self.int_benchmarks),
                ("fp", "FP", self.fp_benchmarks)):
            rows = []
            for benchmark in benchmarks:
                rows.append([benchmark] + [self.ipc(benchmark, policy)
                                           for policy in POLICIES])
            rows.append(["Hm"] + [self.harmonic_mean(suite, policy)
                                  for policy in POLICIES])
            sections.append(format_table(
                ["benchmark", "conv", "basic", "extended"], rows,
                title=(f"Figure 10 ({label}): IPC with {self.num_registers}int+"
                       f"{self.num_registers}FP registers")))
            for policy in ("basic", "extended"):
                measured = self.suite_speedup_percent(suite, policy)
                paper = PAPER_SPEEDUPS_PERCENT[(suite, policy)]
                sections.append(f"  {policy:<9s} speedup over conv: "
                                f"{measured:+.1f}%  (paper: {paper:+.1f}%)")
            sections.append("")
        return "\n".join(sections)


def run(trace_length: int = 20_000, num_registers: int = 48,
        parallel: bool = True, benchmarks: Optional[List[str]] = None,
        base_config: Optional[ProcessorConfig] = None,
        cache=None) -> Figure10Result:
    """Regenerate Figure 10 (all benchmarks × three policies at one size).

    ``cache`` is forwarded to :func:`repro.analysis.sweep.run_sweep`:
    already-simulated points are served from the on-disk result cache.
    """
    int_names = [name for name in integer_workloads()
                 if benchmarks is None or name in benchmarks]
    fp_names = [name for name in fp_workloads()
                if benchmarks is None or name in benchmarks]
    sweep = run_sweep(SweepConfig(
        benchmarks=tuple(int_names + fp_names),
        policies=POLICIES,
        register_sizes=(num_registers,),
        trace_length=trace_length,
        base_config=base_config or ProcessorConfig()),
        parallel=parallel, cache=cache)
    return Figure10Result(num_registers=num_registers, sweep=sweep,
                          int_benchmarks=int_names, fp_benchmarks=fp_names)
