"""Table 4 — register file sizes giving equal IPC.

The paper uses the Figure 11 curves the other way round: instead of asking
"how much faster is early release at a fixed size", it asks "how much
smaller can the register file be at a fixed performance level".  Its
published rows:

=========  ===========  =========  =========  ===========  =========
FP codes                            int codes
-------------------------------    -------------------------------
conv        extended     saved %    conv        extended     saved %
=========  ===========  =========  =========  ===========  =========
69          64           7.2 %      64          56           12.5 %
79          72           8.9 %      72          64           11.1 %
=========  ===========  =========  =========  ===========  =========

This module reproduces the construction: for each conventional-release
reference size, find (by interpolating the extended-release curve) the
smallest size that achieves the same harmonic-mean IPC, and report the
saving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import iso_ipc_register_requirement
from repro.analysis.reporting import format_table
from repro.experiments.figure11 import Figure11Result, run as run_figure11

#: The rows published in the paper, as (suite, conv size, extended size, saved %).
PAPER_ROWS = (
    ("fp", 69, 64, 7.2),
    ("fp", 79, 72, 8.9),
    ("int", 64, 56, 12.5),
    ("int", 72, 64, 11.1),
)


@dataclass(frozen=True)
class IsoIPCRow:
    """One row of Table 4."""

    suite: str
    conv_size: float
    target_ipc: float
    extended_size: Optional[float]

    @property
    def saved_percent(self) -> Optional[float]:
        """Register savings of extended release at equal IPC."""
        if self.extended_size is None or self.conv_size <= 0:
            return None
        return 100.0 * (self.conv_size - self.extended_size) / self.conv_size


@dataclass
class Table4Result:
    """Iso-IPC register savings derived from the Figure 11 sweep."""

    figure11: Figure11Result
    conv_reference_sizes: Dict[str, Tuple[int, ...]]
    rows: List[IsoIPCRow] = field(default_factory=list)

    def rows_for(self, suite: str) -> List[IsoIPCRow]:
        """Rows of one suite."""
        return [row for row in self.rows if row.suite == suite]

    def mean_saving_percent(self, suite: str) -> float:
        """Average register saving of one suite (ignoring unreachable rows)."""
        savings = [row.saved_percent for row in self.rows_for(suite)
                   if row.saved_percent is not None]
        return sum(savings) / len(savings) if savings else 0.0

    def format(self) -> str:
        """Render the regenerated table plus the paper's rows."""
        table_rows: List[List[object]] = []
        for row in self.rows:
            table_rows.append([
                row.suite, f"{row.conv_size:.0f}", f"{row.target_ipc:.3f}",
                "-" if row.extended_size is None else f"{row.extended_size:.1f}",
                "-" if row.saved_percent is None else f"{row.saved_percent:.1f}%",
            ])
        measured = format_table(
            ["suite", "conv size", "IPC target", "extended size", "saved"],
            table_rows, title="Table 4 (measured): register file sizes giving equal IPC")
        paper_rows = [[suite, conv, extended, f"{saved:.1f}%"]
                      for suite, conv, extended, saved in PAPER_ROWS]
        paper = format_table(["suite", "conv", "extended", "saved"], paper_rows,
                             title="Table 4 (paper)")
        return measured + "\n\n" + paper


def derive(figure11: Figure11Result,
           conv_reference_sizes: Optional[Dict[str, Sequence[int]]] = None,
           ) -> Table4Result:
    """Derive Table 4 from an existing Figure 11 sweep result.

    The conventional-release IPC at each reference size is obtained by
    linear interpolation of the Figure 11 curve, so reference sizes need
    not coincide with the sweep grid (the paper's own reference points,
    69 and 79 FP registers, do not).
    """
    import numpy as np

    if conv_reference_sizes is None:
        conv_reference_sizes = {"fp": (69, 79), "int": (64, 72)}
    result = Table4Result(
        figure11=figure11,
        conv_reference_sizes={suite: tuple(sizes)
                              for suite, sizes in conv_reference_sizes.items()})
    for suite, sizes in conv_reference_sizes.items():
        conv_curve = figure11.curve(suite, "conv")
        extended_curve = figure11.curve(suite, "extended")
        conv_sizes = [size for size, _ in conv_curve]
        conv_ipcs = [ipc for _, ipc in conv_curve]
        extended_sizes = [size for size, _ in extended_curve]
        extended_ipcs = [ipc for _, ipc in extended_curve]
        for size in sizes:
            target = float(np.interp(size, conv_sizes, conv_ipcs))
            needed = iso_ipc_register_requirement(extended_sizes, extended_ipcs,
                                                  target)
            result.rows.append(IsoIPCRow(suite=suite, conv_size=float(size),
                                         target_ipc=target, extended_size=needed))
    return result


def run(trace_length: int = 20_000, sizes: Optional[Sequence[int]] = None,
        parallel: bool = True,
        conv_reference_sizes: Optional[Dict[str, Sequence[int]]] = None,
        figure11_result: Optional[Figure11Result] = None,
        cache=None) -> Table4Result:
    """Regenerate Table 4 (running the Figure 11 sweep unless one is supplied).

    ``cache`` is forwarded to the Figure 11 sweep, so a Table 4 run after
    a Figure 11 run performs zero additional simulations.
    """
    if figure11_result is None:
        kwargs = {} if sizes is None else {"sizes": sizes}
        figure11_result = run_figure11(trace_length=trace_length, parallel=parallel,
                                       cache=cache, **kwargs)
    return derive(figure11_result, conv_reference_sizes)
