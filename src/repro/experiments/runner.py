"""Command-line entry point: regenerate any subset of the paper's artefacts.

Installed as ``repro-experiments``::

    repro-experiments table1 figure9 section44      # the analytical ones
    repro-experiments figure10 --trace-length 8000  # a quick simulation run
    repro-experiments all --quick                   # everything, reduced size

Simulation-based experiments accept ``--trace-length`` and ``--serial``;
``--quick`` selects a configuration small enough for a laptop-scale smoke
run (shorter traces, fewer register sizes).

The scenario-library experiments (``scenarios``, ``scenario_occupancy``)
additionally honour ``--scenario-file`` (register user-defined scenarios
from a TOML/JSON config; repeatable) and ``--scenarios a,b`` (restrict
the grid to the named scenarios; unknown names are an error)::

    repro-experiments scenarios scenario_occupancy \
        --scenario-file my_scenarios.toml --scenarios my_burst --quick

``--engine compiled`` runs the simulations on the accelerated C core
(built on demand; automatic fallback to the Python engine with identical
results when no toolchain is available — see
:mod:`repro.engine.accel`); ``--engine python`` pins the reference
engine.  The flag sets ``$REPRO_ENGINE`` for this process and the
worker pool.

Simulation results are cached on disk by default (keyed by workload,
configuration hash, trace length, seed and engine backend), so
re-generating a figure — or generating Table 4 after Figure 11 — only
simulates points never simulated before.  ``--no-cache`` disables the
cache, ``--cache-dir`` relocates it (default: ``$REPRO_SWEEP_CACHE`` or
``~/.cache/repro/sweeps``) and ``--cache-backend`` points it at a shared
``repro-serve`` store (tiered local+remote; see ``docs/sweep-cache.md``).

The ``cache`` subcommand inspects and maintains that store::

    repro-experiments cache                          # per-workload stats
    repro-experiments cache --prune --max-age-days 30
    repro-experiments cache --prune --stale-code     # drop old-code entries

The ``fuzz`` subcommand runs the differential scenario fuzzer (random
workloads and tight machine configs cross-checked between clocks,
engine backends and trace-generation paths — see ``docs/fuzzing.md``)::

    repro-experiments fuzz --seed 20260808 --samples 80
    repro-experiments fuzz --budget-seconds 60 --report fuzz-report.json
    repro-experiments fuzz --replay tests/fuzz/corpus

The ``serve`` subcommand starts the HTTP sweep service (identical to the
``repro-serve`` console script — see ``docs/serving.md``)::

    repro-experiments serve --port 8713 --cache-dir /srv/repro-cache

The ``lint`` subcommand runs the contract-checking static analysis
(identical to the ``repro-lint`` console script — see
``docs/static-analysis.md``)::

    repro-experiments lint                    # all rules, text report
    repro-experiments lint --format json --output lint-report.json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from repro.experiments import (figure2, figure3, figure9, figure10, figure11,
                               scenario_occupancy, scenarios, section33,
                               section44, table1, table4)

#: Experiments that run cycle-level simulations (and therefore accept
#: ``trace_length`` / ``parallel``).
_SIMULATION_EXPERIMENTS = {"figure3", "figure10", "figure11", "table4",
                           "section33", "scenarios", "scenario_occupancy"}

#: Experiments that accept a ``scenarios=[...]`` name filter.
_SCENARIO_EXPERIMENTS = {"scenarios", "scenario_occupancy"}

#: Registry: experiment name → module with a ``run()`` function.
EXPERIMENTS: Dict[str, object] = {
    "table1": table1,
    "figure2": figure2,
    "figure3": figure3,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "table4": table4,
    "section33": section33,
    "section44": section44,
    "scenarios": scenarios,
    "scenario_occupancy": scenario_occupancy,
}

#: Reduced parameters used by ``--quick`` runs.
QUICK_TRACE_LENGTH = 6_000
QUICK_SIZES = (40, 48, 64, 96, 160)


def run_experiment(name: str, trace_length: Optional[int] = None,
                   parallel: bool = True, quick: bool = False,
                   cache=None, scenarios: Optional[List[str]] = None):
    """Run one experiment by name and return its result object.

    ``cache`` is forwarded to the simulation experiments (see
    :func:`repro.analysis.sweep.run_sweep`); analytical experiments
    ignore it.  ``scenarios`` filters the scenario-library experiments to
    the named scenarios (unknown names raise :class:`ValueError`); other
    experiments ignore it.
    """
    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known experiments: {known}")
    module = EXPERIMENTS[name]
    if name not in _SIMULATION_EXPERIMENTS:
        return module.run()
    kwargs = {"parallel": parallel, "cache": cache}
    if trace_length is not None:
        kwargs["trace_length"] = trace_length
    elif quick:
        kwargs["trace_length"] = QUICK_TRACE_LENGTH
    if quick and name in ("figure11", "table4"):
        kwargs["sizes"] = QUICK_SIZES
    if quick and name == "scenarios":
        kwargs["sizes"] = (48,)
    if name in _SCENARIO_EXPERIMENTS and scenarios is not None:
        kwargs["scenarios"] = scenarios
    return module.run(**kwargs)


def cache_main(argv: List[str]) -> int:
    """The ``repro-experiments cache`` subcommand: stats and pruning."""
    from repro.analysis.cache import SweepCache

    parser = argparse.ArgumentParser(
        prog="repro-experiments cache",
        description="Inspect or prune the on-disk sweep result cache.")
    parser.add_argument("--cache-dir", default=None,
                        help="root of the sweep result cache (default: "
                             "$REPRO_SWEEP_CACHE or ~/.cache/repro/sweeps)")
    parser.add_argument("--prune", action="store_true",
                        help="delete entries matching the criteria below "
                             "(plus unreadable/outdated-schema files)")
    parser.add_argument("--max-age-days", type=float, default=None,
                        help="with --prune: drop entries older than this")
    parser.add_argument("--stale-code", action="store_true",
                        help="with --prune: drop entries produced by a "
                             "different version of the simulator source")
    parser.add_argument("--max-size-mb", type=float, default=None,
                        help="with --prune: evict oldest entries first "
                             "until the cache fits this many megabytes "
                             "(prints a per-workload eviction summary)")
    args = parser.parse_args(argv)

    cache = SweepCache(args.cache_dir)
    if args.prune:
        if (args.max_age_days is None and not args.stale_code
                and args.max_size_mb is None):
            parser.error("--prune needs --max-age-days, --stale-code "
                         "and/or --max-size-mb")
        if args.max_age_days is not None or args.stale_code:
            removed = cache.prune(max_age_days=args.max_age_days,
                                  stale_code=args.stale_code)
            print(f"pruned {removed} entries from {cache.cache_dir}")
        if args.max_size_mb is not None:
            report = cache.prune_to_size(args.max_size_mb)
            print(f"size cap {args.max_size_mb:g} MB on {cache.cache_dir}:")
            print(report.format())
    else:
        if (args.max_age_days is not None or args.stale_code
                or args.max_size_mb is not None):
            parser.error("--max-age-days/--stale-code/--max-size-mb "
                         "require --prune")
        print(f"cache: {cache.cache_dir}")
        print(cache.stats().format())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line interface (see module docstring)."""
    raw_argv = list(sys.argv[1:] if argv is None else argv)
    if raw_argv and raw_argv[0] == "cache":
        return cache_main(raw_argv[1:])
    if raw_argv and raw_argv[0] == "fuzz":
        from repro.fuzz.cli import fuzz_main

        return fuzz_main(raw_argv[1:])
    if raw_argv and raw_argv[0] == "serve":
        from repro.serve.cli import serve_main

        return serve_main(raw_argv[1:])
    if raw_argv and raw_argv[0] == "lint":
        from repro.checks.cli import main as lint_main

        return lint_main(raw_argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Hardware Schemes for "
                    "Early Register Release' (ICPP 2002).")
    parser.add_argument("experiments", nargs="+",
                        help="experiment names (%s), 'all', or the 'cache' / "
                             "'fuzz' / 'serve' / 'lint' subcommands"
                             % ", ".join(sorted(EXPERIMENTS)))
    parser.add_argument("--trace-length", type=int, default=None,
                        help="dynamic instructions per benchmark simulation")
    parser.add_argument("--serial", action="store_true",
                        help="run simulations in this process instead of a pool")
    parser.add_argument("--quick", action="store_true",
                        help="reduced trace length and register-size grid")
    parser.add_argument("--engine", default=None,
                        choices=["auto", "python", "compiled"],
                        help="simulation engine backend: 'compiled' builds and "
                             "uses the accelerated C core (falls back to the "
                             "Python engine, with identical results, when no C "
                             "toolchain is available); 'python' pins the "
                             "reference engine (default: $REPRO_ENGINE)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always re-simulate instead of using the on-disk "
                             "sweep result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="root of the sweep result cache (default: "
                             "$REPRO_SWEEP_CACHE or ~/.cache/repro/sweeps)")
    parser.add_argument("--cache-backend", default=None, metavar="SPEC",
                        help="result-store backend: 'local' (default), "
                             "'http(s)://HOST:PORT' for a tiered local+remote "
                             "store backed by a repro-serve endpoint, or "
                             "'remote:URL' for remote-only (default: "
                             "$REPRO_CACHE_BACKEND); an unreachable remote "
                             "degrades to local-only, never fails the sweep")
    parser.add_argument("--scenario-file", action="append", default=[],
                        metavar="PATH",
                        help="register the user-defined scenarios in this "
                             "TOML/JSON config before running (repeatable); "
                             "they join the scenario-library experiments")
    parser.add_argument("--scenarios", default=None, metavar="NAMES",
                        help="comma-separated scenario names to restrict the "
                             "scenario-library experiments to (unknown names "
                             "are an error)")
    args = parser.parse_args(raw_argv)

    if args.engine is not None:
        # Exported (rather than threaded through run()) so the sweep worker
        # pool inherits the choice; "auto" restores the environment default.
        import os

        from repro.engine.accel import ENGINE_ENV

        if args.engine == "auto":
            os.environ.pop(ENGINE_ENV, None)
        else:
            os.environ[ENGINE_ENV] = args.engine

    for path in args.scenario_file:
        try:
            from repro.trace.workloads import register_scenario_file

            registered = register_scenario_file(path, replace=True)
        except (OSError, ValueError) as exc:
            parser.error(f"--scenario-file {path}: {exc}")
        print(f"registered scenarios from {path}: {', '.join(registered)}")
    scenario_filter = ([name.strip() for name in args.scenarios.split(",")
                        if name.strip()]
                       if args.scenarios is not None else None)

    if args.no_cache:
        if args.cache_backend is not None:
            parser.error("--cache-backend conflicts with --no-cache")
        cache = None
    else:
        from repro.analysis.backends import resolve_backend
        from repro.analysis.cache import SweepCache

        cache = SweepCache(backend=resolve_backend(
            args.cache_backend, cache_dir=args.cache_dir))

    names = list(args.experiments)
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    for name in names:
        start = time.time()
        result = run_experiment(name, trace_length=args.trace_length,
                                parallel=not args.serial, quick=args.quick,
                                cache=cache, scenarios=scenario_filter)
        elapsed = time.time() - start
        print("=" * 72)
        print(f"{name}  ({elapsed:.1f}s)")
        print("=" * 72)
        print(result.format())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
