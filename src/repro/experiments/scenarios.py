"""Scenario grid — the workload scenario library under all three policies.

Not a paper artefact: the scenario families (``repro.trace.workloads
.SCENARIOS``) push the synthetic workload generator into dynamic regimes
the SPEC95-like profiles do not reach — phased compute/memory behaviour,
deep pointer chasing, near-coin-flip branch entropy, store-bandwidth
pressure and a register-pressure ramp — and this experiment sweeps them
across the release policies and two register-file sizes, reporting IPC
and the early-release activity of each point.  See ``docs/workloads.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.metrics import percentage_speedup
from repro.analysis.reporting import format_table
from repro.analysis.sweep import SweepConfig, SweepResult, run_sweep
from repro.pipeline.config import ProcessorConfig
from repro.trace.workloads import SCENARIOS, scenario_workloads

POLICIES = ("conv", "basic", "extended")

#: Tight and roomy register files (the scenario grid's two columns).
DEFAULT_SIZES = (48, 96)


@dataclass
class ScenarioGridResult:
    """IPC and release activity for every scenario grid point."""

    sweep: SweepResult
    scenarios: List[str] = field(default_factory=list)
    sizes: Tuple[int, ...] = DEFAULT_SIZES

    # ------------------------------------------------------------------
    def ipc(self, scenario: str, policy: str, size: int) -> float:
        """IPC of one scenario under one policy at one file size."""
        return self.sweep.ipc(scenario, policy, size)

    def speedup_percent(self, scenario: str, policy: str, size: int) -> float:
        """IPC gain of ``policy`` over conventional release."""
        return percentage_speedup(self.ipc(scenario, policy, size),
                                  self.ipc(scenario, "conv", size))

    def early_release_fraction(self, scenario: str, policy: str,
                               size: int) -> float:
        """Early releases as a fraction of all releases (focus file)."""
        stats = self.sweep.stats(scenario, policy, size)
        focus = (stats.int_registers
                 if SCENARIOS[scenario].suite == "int" else stats.fp_registers)
        total = focus.releases
        return focus.early_releases / total if total else 0.0

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Render one IPC panel per register-file size."""
        sections: List[str] = []
        for size in self.sizes:
            rows = []
            for scenario in self.scenarios:
                row: List[object] = [scenario]
                for policy in POLICIES:
                    row.append(self.ipc(scenario, policy, size))
                row.append(f"{self.speedup_percent(scenario, 'extended', size):+.1f}%")
                row.append(f"{self.early_release_fraction(scenario, 'extended', size):.0%}")
                rows.append(row)
            sections.append(format_table(
                ["scenario", "conv", "basic", "extended", "ext gain",
                 "ext early"],
                rows,
                title=(f"Scenario grid: IPC with {size}int+{size}FP "
                       f"registers")))
            sections.append("")
        return "\n".join(sections)


def run(trace_length: int = 20_000, parallel: bool = True,
        sizes: Tuple[int, ...] = DEFAULT_SIZES,
        scenarios: Optional[List[str]] = None,
        base_config: Optional[ProcessorConfig] = None,
        cache=None) -> ScenarioGridResult:
    """Sweep the scenario library (scenarios × policies × sizes).

    Cached, sharded and parallelised exactly like the paper artefacts:
    scenario names resolve through the same ``get_workload`` registry.
    """
    names = [name for name in scenario_workloads()
             if scenarios is None or name in scenarios]
    sweep = run_sweep(SweepConfig(
        benchmarks=tuple(names),
        policies=POLICIES,
        register_sizes=tuple(sizes),
        trace_length=trace_length,
        base_config=base_config or ProcessorConfig()),
        parallel=parallel, cache=cache)
    return ScenarioGridResult(sweep=sweep, scenarios=names,
                              sizes=tuple(sizes))
