"""Scenario grid — the workload scenario library under all three policies.

Not a paper artefact: the scenario families (``repro.trace.workloads
.SCENARIOS``) push the synthetic workload generator into dynamic regimes
the SPEC95-like profiles do not reach — phased compute/memory behaviour,
deep pointer chasing, near-coin-flip branch entropy, store-bandwidth
pressure and a register-pressure ramp — and this experiment sweeps them
across the release policies and two register-file sizes, reporting IPC
and the early-release activity of each point.  See ``docs/workloads.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.metrics import percentage_speedup
from repro.analysis.reporting import format_table
from repro.analysis.sweep import SweepConfig, SweepResult, run_sweep
from repro.pipeline.config import ProcessorConfig
from repro.trace.workloads import get_scenario, scenario_workloads

POLICIES = ("conv", "basic", "extended")

#: Tight and roomy register files (the scenario grid's two columns).
DEFAULT_SIZES = (48, 96)


def resolve_scenario_names(scenarios: Optional[List[str]]) -> List[str]:
    """Resolve a scenario filter against the registry, in grid order.

    ``None`` selects every scenario.  An unknown name raises
    :class:`ValueError` listing the known scenarios in sorted order —
    silently dropping it (the pre-PR-5 behaviour) turned a typo into a
    sweep that was quietly missing points, or an empty grid.  This is the
    single name-validation path shared by the scenario-grid experiments
    and the ``repro-experiments fuzz`` CLI.
    """
    known = scenario_workloads()
    if scenarios is None:
        return known
    if not scenarios:
        raise ValueError(
            f"empty scenario selection (an empty or all-separator "
            f"--scenarios value selects nothing); known scenarios: "
            f"{', '.join(sorted(known))}")
    unknown = [name for name in scenarios if name not in known]
    if unknown:
        raise ValueError(
            f"unknown scenarios: {', '.join(sorted(unknown))}; known "
            f"scenarios: {', '.join(sorted(known))} (user-defined scenarios "
            f"must be registered first — see register_scenario / "
            f"--scenario-file)")
    requested = set(scenarios)
    return [name for name in known if name in requested]


@dataclass
class ScenarioGridResult:
    """IPC and release activity for every scenario grid point."""

    sweep: SweepResult
    scenarios: List[str] = field(default_factory=list)
    sizes: Tuple[int, ...] = DEFAULT_SIZES
    #: scenario name -> suite ("int"/"fp"), captured at sweep time so the
    #: result stays self-contained: reporting must not re-derive the focus
    #: file from the registry (a user-defined scenario may have been
    #: re-registered or unregistered since the sweep ran).
    suites: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def ipc(self, scenario: str, policy: str, size: int) -> float:
        """IPC of one scenario under one policy at one file size."""
        return self.sweep.ipc(scenario, policy, size)

    def speedup_percent(self, scenario: str, policy: str, size: int) -> float:
        """IPC gain of ``policy`` over conventional release."""
        return percentage_speedup(self.ipc(scenario, policy, size),
                                  self.ipc(scenario, "conv", size))

    def _suite(self, scenario: str) -> str:
        suite = self.suites.get(scenario)
        if suite is None:
            # Results built by hand (tests, pre-PR-5 pickles): fall back
            # to the registry, which raises a helpful KeyError if the
            # scenario is genuinely unknown.
            suite = get_scenario(scenario).suite
        return suite

    def early_release_fraction(self, scenario: str, policy: str,
                               size: int) -> float:
        """Early releases as a fraction of all releases (focus file)."""
        stats = self.sweep.stats(scenario, policy, size)
        focus = (stats.int_registers
                 if self._suite(scenario) == "int" else stats.fp_registers)
        total = focus.releases
        return focus.early_releases / total if total else 0.0

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Render one IPC panel per register-file size."""
        sections: List[str] = []
        for size in self.sizes:
            rows = []
            for scenario in self.scenarios:
                row: List[object] = [scenario]
                for policy in POLICIES:
                    row.append(self.ipc(scenario, policy, size))
                row.append(f"{self.speedup_percent(scenario, 'extended', size):+.1f}%")
                row.append(f"{self.early_release_fraction(scenario, 'extended', size):.0%}")
                rows.append(row)
            sections.append(format_table(
                ["scenario", "conv", "basic", "extended", "ext gain",
                 "ext early"],
                rows,
                title=(f"Scenario grid: IPC with {size}int+{size}FP "
                       f"registers")))
            sections.append("")
        return "\n".join(sections)


def run(trace_length: int = 20_000, parallel: bool = True,
        sizes: Tuple[int, ...] = DEFAULT_SIZES,
        scenarios: Optional[List[str]] = None,
        base_config: Optional[ProcessorConfig] = None,
        cache=None) -> ScenarioGridResult:
    """Sweep the scenario library (scenarios × policies × sizes).

    Cached, sharded and parallelised exactly like the paper artefacts:
    scenario names (built-in and registered) resolve through the same
    ``get_workload`` registry.  Unknown names in ``scenarios`` raise
    :class:`ValueError` instead of being silently dropped.
    """
    names = resolve_scenario_names(scenarios)
    suites = {name: get_scenario(name).suite for name in names}
    sweep = run_sweep(SweepConfig(
        benchmarks=tuple(names),
        policies=POLICIES,
        register_sizes=tuple(sizes),
        trace_length=trace_length,
        base_config=base_config or ProcessorConfig()),
        parallel=parallel, cache=cache)
    return ScenarioGridResult(sweep=sweep, scenarios=names,
                              sizes=tuple(sizes), suites=suites)
