"""Figure 9 — access time and energy of the LUs Table vs the register files.

Both panels are regenerated from the analytical Rixner-style model
(:mod:`repro.power.rixner_model`): access time (ns) and energy per access
(pJ) of the integer file (44 ports), the FP file (50 ports) and the LUs
Table (32 × 9 bits, 56 ports) as the number of registers grows from 40 to
160.  The paper's headline observations are also checked: the LUs Table
access time sits well below any register file (26 % below the smallest
integer file) and its energy is about 20 % of the least demanding file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.reporting import format_series
from repro.power.rixner_model import RixnerModel

#: Anchor values printed in the paper.
PAPER_LUS_ACCESS_TIME_NS = 0.98
PAPER_LUS_ENERGY_PJ = 193.2


@dataclass
class Figure9Result:
    """Access-time and energy curves for INT / FP / LUs Table."""

    sizes: List[int]
    access_time_ns: Dict[str, List[float]] = field(default_factory=dict)
    energy_pj: Dict[str, List[float]] = field(default_factory=dict)

    def series(self, panel: str) -> Dict[str, List[Tuple[float, float]]]:
        """(size, value) series of one panel ("time" or "energy")."""
        data = self.access_time_ns if panel == "time" else self.energy_pj
        return {name: list(zip(self.sizes, values, strict=True)) for name, values in data.items()}

    def lus_delay_margin_vs_smallest_int(self) -> float:
        """Fractional delay advantage of the LUs Table over the smallest int file."""
        smallest_int = self.access_time_ns["INT"][0]
        lus = self.access_time_ns["LUsT"][0]
        return 1.0 - lus / smallest_int

    def lus_energy_fraction_of_smallest_int(self) -> float:
        """LUs Table energy as a fraction of the least demanding register file."""
        return self.energy_pj["LUsT"][0] / self.energy_pj["INT"][0]

    def format(self) -> str:
        """Render both panels as text tables."""
        parts = [
            format_series(self.series("time"), "registers", "ns",
                          title="Figure 9a: access time (ns)", float_digits=3),
            "",
            format_series(self.series("energy"), "registers", "pJ",
                          title="Figure 9b: energy per access (pJ)", float_digits=1),
            "",
            (f"LUs Table: {self.access_time_ns['LUsT'][0]:.2f} ns "
             f"(paper: {PAPER_LUS_ACCESS_TIME_NS} ns), "
             f"{self.energy_pj['LUsT'][0]:.1f} pJ "
             f"(paper: {PAPER_LUS_ENERGY_PJ} pJ)"),
            (f"delay margin vs smallest INT file: "
             f"{100 * self.lus_delay_margin_vs_smallest_int():.0f}% "
             f"(paper: 26%), energy fraction: "
             f"{100 * self.lus_energy_fraction_of_smallest_int():.0f}% "
             f"(paper: ~20%)"),
        ]
        return "\n".join(parts)


def run(sizes: range = range(40, 161, 8)) -> Figure9Result:
    """Regenerate both panels of Figure 9 from the analytical model."""
    model = RixnerModel()
    curves = model.figure9_curves(sizes)
    result = Figure9Result(sizes=[size for size, _, _ in curves["INT"]])
    for name, points in curves.items():
        result.access_time_ns[name] = [time for _, time, _ in points]
        result.energy_pj[name] = [energy for _, _, energy in points]
    return result
