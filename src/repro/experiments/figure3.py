"""Figure 3 — allocated registers split into Empty / Ready / Idle.

Conventional renaming, 96 physical registers per file, all ten
benchmarks.  The integer programs report the integer file, the FP
programs the FP file.  The paper's headline numbers from this figure are
the suite-level *idle overheads*: the late release of conventional
renaming inflates the number of used registers by **45.8 %** for the
integer programs and **16.8 %** for the FP programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.occupancy import OccupancyRow, idle_overhead_percent, mean_row, \
    occupancy_breakdown
from repro.analysis.reporting import ascii_bar_chart, format_table
from repro.analysis.sweep import SweepConfig, run_sweep
from repro.pipeline.config import ProcessorConfig
from repro.trace.workloads import fp_workloads, integer_workloads

#: Idle overhead percentages reported in the paper (Section 2).
PAPER_IDLE_OVERHEAD_PERCENT = {"int": 45.8, "fp": 16.8}


@dataclass
class Figure3Result:
    """Occupancy rows per benchmark plus suite means and idle overheads."""

    num_registers: int
    rows: Dict[str, List[OccupancyRow]] = field(default_factory=dict)

    def suite_mean(self, suite: str) -> OccupancyRow:
        """The "Amean" bar of one panel ("int" or "fp")."""
        return mean_row(self.rows[suite])

    def idle_overhead(self, suite: str) -> float:
        """Idle registers as a percentage of used registers for one suite."""
        return idle_overhead_percent(self.rows[suite])

    def format(self) -> str:
        """Render both panels plus the paper comparison."""
        sections: List[str] = []
        for suite, label in (("int", "integer"), ("fp", "floating point")):
            rows = self.rows[suite] + [self.suite_mean(suite)]
            table_rows = [[row.benchmark, row.empty, row.ready, row.idle,
                           row.allocated, f"{row.idle_overhead_percent:.1f}%"]
                          for row in rows]
            sections.append(format_table(
                ["benchmark", "empty", "ready", "idle", "allocated", "idle/used"],
                table_rows,
                title=(f"Figure 3 ({label}): allocated registers by state, "
                       f"conventional renaming, {self.num_registers} regs"),
                float_digits=2))
            bars = {row.benchmark: row.allocated for row in rows}
            sections.append(ascii_bar_chart(bars, title="allocated registers"))
            sections.append(
                f"idle overhead (measured): {self.idle_overhead(suite):.1f}%   "
                f"(paper: {PAPER_IDLE_OVERHEAD_PERCENT[suite]:.1f}%)")
            sections.append("")
        return "\n".join(sections)


def run(trace_length: int = 20_000, num_registers: int = 96,
        parallel: bool = True, benchmarks: Optional[List[str]] = None,
        base_config: Optional[ProcessorConfig] = None,
        cache=None) -> Figure3Result:
    """Regenerate Figure 3 by simulating every benchmark under conventional release.

    ``cache`` is forwarded to :func:`repro.analysis.sweep.run_sweep`.
    """
    int_names = [name for name in integer_workloads()
                 if benchmarks is None or name in benchmarks]
    fp_names = [name for name in fp_workloads()
                if benchmarks is None or name in benchmarks]
    sweep = run_sweep(SweepConfig(
        benchmarks=tuple(int_names + fp_names),
        policies=("conv",),
        register_sizes=(num_registers,),
        trace_length=trace_length,
        base_config=base_config or ProcessorConfig()),
        parallel=parallel, cache=cache)

    result = Figure3Result(num_registers=num_registers)
    result.rows["int"] = [occupancy_breakdown(sweep.stats(name, "conv", num_registers),
                                              "int") for name in int_names]
    result.rows["fp"] = [occupancy_breakdown(sweep.stats(name, "conv", num_registers),
                                             "fp") for name in fp_names]
    return result
