"""Figure 2 — lifecycle of a physical register (FREE → EMPTY → READY → IDLE → FREE).

The paper's example: instruction ``i`` writes ``r1`` (renamed to physical
register ``p7``); a later instruction ``LU`` reads ``r1`` for the last
time; a later instruction ``NV`` redefines ``r1``.  Under conventional
release ``p7`` stays allocated — and *Idle* — from the commit of ``LU``
until the commit of ``NV``; the early-release mechanisms release it at the
commit of ``LU``.

This experiment rebuilds that exact three-instruction example as a trace,
runs it cycle by cycle under a chosen release policy and records the state
of the tracked physical register every cycle, so the produced timeline is
the simulated counterpart of Figure 2(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.register_state import RegState
from repro.isa import InstructionBuilder, RegClass
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import Processor
from repro.trace.records import Trace


def example_trace(padding: int = 32) -> Trace:
    """Build the paper's ``i`` / ``LU`` / ``NV`` example (Figure 2b / Figure 4a).

    ``padding`` unrelated instructions separate the three so the different
    lifecycle states last long enough to be visible in the timeline.
    """
    builder = InstructionBuilder(pc=0x1000)
    builder.alu(dest=1, srcs=(2, 3))          # i : r1 = r2 op r3
    for index in range(padding):
        builder.alu(dest=10 + index % 4, srcs=(11,))
    builder.alu(dest=3, srcs=(2, 1))          # LU: r3 = r2 + r1  (last use of r1)
    for index in range(padding):
        builder.alu(dest=14 + index % 4, srcs=(15,))
    builder.alu(dest=1, srcs=(5,))            # NV: r1 = ...      (next version)
    for index in range(padding):
        builder.alu(dest=18 + index % 4, srcs=(19,))
    return Trace(name="figure2-example", focus_class=RegClass.INT,
                 instructions=builder.trace())


@dataclass
class Figure2Result:
    """Cycle-by-cycle state timeline of the tracked physical register."""

    policy: str
    tracked_register: int
    timeline: List[Tuple[int, RegState]] = field(default_factory=list)

    def states_observed(self) -> List[RegState]:
        """Distinct states in order of first appearance."""
        seen: List[RegState] = []
        for _cycle, state in self.timeline:
            if state not in seen:
                seen.append(state)
        return seen

    def state_durations(self) -> Dict[RegState, int]:
        """Number of cycles spent in each state."""
        durations: Dict[RegState, int] = {}
        for _cycle, state in self.timeline:
            durations[state] = durations.get(state, 0) + 1
        return durations

    def format(self) -> str:
        """Render the timeline as text."""
        lines = [f"Figure 2: lifecycle of physical register p{self.tracked_register} "
                 f"under '{self.policy}' release", ""]
        current: Optional[RegState] = None
        start = 0
        sentinel_cycle = (self.timeline[-1][0] + 1) if self.timeline else 0
        for cycle, state in self.timeline + [(sentinel_cycle, None)]:
            if state != current:
                if current is not None:
                    lines.append(f"  cycles {start:>3d}-{cycle - 1:>3d}: "
                                 f"{current.value.upper()}")
                current = state
                start = cycle
        durations = self.state_durations()
        lines.append("")
        lines.append("  " + ", ".join(f"{state.value}: {count} cycles"
                                      for state, count in durations.items()))
        return "\n".join(lines)


def run(policy: str = "conv", padding: int = 32, max_cycles: int = 800) -> Figure2Result:
    """Run the Figure 2 example under ``policy`` and record p-register states.

    The tracked register is the one allocated to the destination of the
    first instruction (the paper's ``p7``).  The state boundaries follow
    the paper's definitions exactly: Empty from allocation to the write,
    Ready from the write to the commit of the last-use instruction, Idle
    from that commit to the release.
    """
    trace = example_trace(padding=padding)
    # Warm-up (on the example trace itself — it is not a registry workload)
    # keeps instruction-cache misses from spreading the three instructions of
    # interest tens of cycles apart.
    config = ProcessorConfig(release_policy=policy, warmup=True,
                             enable_wrong_path=False)
    processor = Processor(trace, config)
    register_file = processor.register_files[RegClass.INT]

    # Positions (= ROS sequence numbers, since nothing is squashed) of the
    # three instructions of interest in the constructed trace.
    producer_seq = 0
    lu_seq = 1 + padding

    tracked: Optional[int] = None
    alloc_cycle: Optional[int] = None
    write_cycle: Optional[int] = None
    lu_commit_cycle: Optional[int] = None
    release_cycle: Optional[int] = None

    while not processor.finished and processor.cycle < max_cycles:
        processor.step()
        cycle = processor.cycle
        if tracked is None:
            producer_entry = processor.ros_entry(producer_seq)
            if producer_entry is not None and producer_entry.pd is not None:
                tracked = producer_entry.pd
                alloc_cycle = cycle
        if tracked is None:
            continue
        if write_cycle is None:
            producer_entry = processor.ros_entry(producer_seq)
            if producer_entry is not None and producer_entry.completed:
                write_cycle = cycle
            elif producer_entry is None:
                write_cycle = write_cycle or cycle
        if lu_commit_cycle is None and processor.is_committed(lu_seq):
            lu_commit_cycle = cycle
        if release_cycle is None and register_file.is_free(tracked):
            release_cycle = cycle
    end_cycle = processor.cycle

    result = Figure2Result(policy=policy,
                           tracked_register=tracked if tracked is not None else -1)
    if tracked is None or alloc_cycle is None:
        return result
    write_cycle = write_cycle if write_cycle is not None else alloc_cycle
    lu_commit_cycle = lu_commit_cycle if lu_commit_cycle is not None else write_cycle
    release_cycle = release_cycle if release_cycle is not None else end_cycle
    for cycle in range(alloc_cycle, release_cycle + 1):
        if cycle < write_cycle:
            state = RegState.EMPTY
        elif cycle < lu_commit_cycle:
            state = RegState.READY
        elif cycle < release_cycle:
            state = RegState.IDLE
        else:
            state = RegState.FREE
        result.timeline.append((cycle, state))
    return result
