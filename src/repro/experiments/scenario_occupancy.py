"""Scenario occupancy — per-phase Empty/Ready/Idle splits (Figure 3 style).

Not a paper artefact: the scenario library's profiles change character
*within* one trace (compute ⇄ memory phases, a widening register-pressure
ramp), so a whole-trace occupancy average blurs exactly the structure the
scenarios were built to exhibit.  This experiment renders the paper's
Figure 3 split — allocated registers divided into Empty, Ready and Idle
under conventional renaming — **per phase**: each phase of each scenario
is simulated as a single-phase workload (same kernel family and
parameters, run standalone), giving one occupancy row per phase plus the
idle-overhead percentage the early-release schemes could reclaim there.

Works for built-in and user-defined scenarios alike; the derived
per-phase workloads flow through the ordinary ``run_sweep`` stack (disk
cache included) as ephemeral profiles — they are never registered, so
the scenario registry and grid stay untouched.  See
``docs/experiments.md`` and ``docs/workloads.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.occupancy import OccupancyRow, idle_overhead_percent, \
    mean_row, occupancy_breakdown
from repro.analysis.reporting import ascii_bar_chart, format_table
from repro.analysis.sweep import SweepConfig, run_sweep
from repro.experiments.scenarios import resolve_scenario_names
from repro.pipeline.config import ProcessorConfig
from repro.trace.workloads import ScenarioProfile, get_scenario

#: Register-file size of the occupancy runs (the paper's Figure 3 uses 96).
DEFAULT_NUM_REGISTERS = 96


def phase_profiles(profile: ScenarioProfile) -> List[Tuple[str, ScenarioProfile]]:
    """Derive one standalone single-phase profile per phase of a scenario.

    Returns ``(phase label, derived profile)`` pairs.  The derived
    workload names (``<scenario>@phase<i>``) are internal: they key the
    sweep/cache plumbing but never enter the scenario registry.
    """
    derived: List[Tuple[str, ScenarioProfile]] = []
    for index, phase in enumerate(profile.phases):
        label = f"phase {index} ({phase.kernel})"
        derived.append((label, ScenarioProfile(
            name=f"{profile.name}@phase{index}",
            suite=profile.suite,
            phases=(phase,),
            phase_length=profile.phase_length,
            description=f"phase {index} of scenario {profile.name!r}, "
                        f"run standalone for the occupancy split")))
    return derived


@dataclass
class ScenarioOccupancyResult:
    """Per-phase occupancy rows for each scenario, plus suite context."""

    num_registers: int
    scenarios: List[str] = field(default_factory=list)
    #: scenario name -> one OccupancyRow per phase (label = phase).
    rows: Dict[str, List[OccupancyRow]] = field(default_factory=dict)
    #: scenario name -> suite ("int"/"fp"), captured at sweep time.
    suites: Dict[str, str] = field(default_factory=dict)

    def phase_rows(self, scenario: str) -> List[OccupancyRow]:
        """The per-phase occupancy rows of one scenario."""
        return self.rows[scenario]

    def scenario_mean(self, scenario: str) -> OccupancyRow:
        """Mean row over a scenario's phases (its whole-trace analogue)."""
        return mean_row(self.rows[scenario], label="mean")

    def idle_overhead(self, scenario: str) -> float:
        """Idle registers as a percentage of used, averaged over phases."""
        return idle_overhead_percent(self.rows[scenario])

    def format(self) -> str:
        """Render one Figure 3-style panel per scenario."""
        sections: List[str] = []
        for scenario in self.scenarios:
            rows = list(self.rows[scenario])
            multi_phase = len(rows) > 1
            if multi_phase:
                rows.append(self.scenario_mean(scenario))
            table_rows = [[row.benchmark, row.empty, row.ready, row.idle,
                           row.allocated, f"{row.idle_overhead_percent:.1f}%"]
                          for row in rows]
            suite = self.suites.get(scenario, "?")
            sections.append(format_table(
                ["phase", "empty", "ready", "idle", "allocated", "idle/used"],
                table_rows,
                title=(f"Scenario occupancy: {scenario} ({suite} file), "
                       f"conventional renaming, {self.num_registers} regs"),
                float_digits=2))
            bars = {row.benchmark: row.idle for row in rows}
            sections.append(ascii_bar_chart(
                bars, title="idle (reclaimable) registers per phase"))
            sections.append(
                f"idle overhead across phases: "
                f"{self.idle_overhead(scenario):.1f}%")
            sections.append("")
        return "\n".join(sections)


def run(trace_length: int = 20_000,
        num_registers: int = DEFAULT_NUM_REGISTERS,
        parallel: bool = True,
        scenarios: Optional[List[str]] = None,
        base_config: Optional[ProcessorConfig] = None,
        cache=None) -> ScenarioOccupancyResult:
    """Simulate every phase of every (selected) scenario standalone.

    One conventional-release simulation per phase at ``num_registers``
    registers per file — cached, sharded and parallelised like every
    other sweep.  Unknown names in ``scenarios`` raise
    :class:`ValueError` (mirroring the scenario grid).
    """
    names = resolve_scenario_names(scenarios)
    labels: Dict[str, List[Tuple[str, str]]] = {}
    profiles: List[ScenarioProfile] = []
    suites: Dict[str, str] = {}
    for name in names:
        profile = get_scenario(name)
        suites[name] = profile.suite
        labels[name] = []
        for label, derived in phase_profiles(profile):
            labels[name].append((label, derived.name))
            profiles.append(derived)

    sweep = run_sweep(SweepConfig(
        benchmarks=tuple(profile.name for profile in profiles),
        policies=("conv",),
        register_sizes=(num_registers,),
        trace_length=trace_length,
        base_config=base_config or ProcessorConfig(),
        scenario_profiles=tuple(profiles)),
        parallel=parallel, cache=cache)

    result = ScenarioOccupancyResult(num_registers=num_registers,
                                     scenarios=names, suites=suites)
    for name in names:
        result.rows[name] = [
            occupancy_breakdown(sweep.stats(derived_name, "conv", num_registers),
                                suites[name], label=label)
            for label, derived_name in labels[name]
        ]
    return result
