"""Section 3.3 — performance of the *basic* mechanism alone.

The paper quotes, for the basic mechanism vs conventional release:

* 64int + 64FP registers: ≈3 % average speedup for the FP programs,
  negligible for the integer programs;
* 48int + 48FP: ≈6 % (FP), negligible (integer);
* 40int + 40FP: ≈9 % (FP) and ≈5 % (integer) — with files this tight even
  the integer codes benefit.

This experiment reruns that comparison at the same three sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.analysis.metrics import percentage_speedup
from repro.analysis.reporting import format_table
from repro.analysis.sweep import SweepConfig, SweepResult, run_sweep
from repro.pipeline.config import ProcessorConfig
from repro.trace.workloads import fp_workloads, integer_workloads

#: (register size → suite → paper speedup %) quoted in Section 3.3.
PAPER_BASIC_SPEEDUPS = {
    64: {"fp": 3.0, "int": 0.0},
    48: {"fp": 6.0, "int": 0.0},
    40: {"fp": 9.0, "int": 5.0},
}

DEFAULT_SIZES = (64, 48, 40)


@dataclass
class Section33Result:
    """Basic-vs-conventional suite speedups at several register sizes."""

    sizes: Tuple[int, ...]
    sweep: SweepResult
    int_benchmarks: List[str] = field(default_factory=list)
    fp_benchmarks: List[str] = field(default_factory=list)

    def speedup_percent(self, suite: str, size: int) -> float:
        """Suite harmonic-mean speedup of the basic mechanism at ``size``."""
        benchmarks = self.int_benchmarks if suite == "int" else self.fp_benchmarks
        return percentage_speedup(
            self.sweep.harmonic_mean_ipc(benchmarks, "basic", size),
            self.sweep.harmonic_mean_ipc(benchmarks, "conv", size))

    def format(self) -> str:
        """Render measured-vs-paper speedups."""
        rows: List[List[object]] = []
        for size in self.sizes:
            for suite in ("fp", "int"):
                paper = PAPER_BASIC_SPEEDUPS.get(size, {}).get(suite)
                rows.append([
                    f"{size}int+{size}FP", suite,
                    f"{self.speedup_percent(suite, size):+.1f}%",
                    "-" if paper is None else f"{paper:+.1f}%",
                ])
        return format_table(
            ["configuration", "suite", "basic speedup (measured)",
             "basic speedup (paper)"],
            rows, title="Section 3.3: basic mechanism vs conventional release")


def run(trace_length: int = 20_000, sizes: Sequence[int] = DEFAULT_SIZES,
        parallel: bool = True, benchmarks: Optional[List[str]] = None,
        base_config: Optional[ProcessorConfig] = None,
        cache=None) -> Section33Result:
    """Regenerate the Section 3.3 comparison.

    ``cache`` is forwarded to :func:`repro.analysis.sweep.run_sweep`.
    """
    int_names = [name for name in integer_workloads()
                 if benchmarks is None or name in benchmarks]
    fp_names = [name for name in fp_workloads()
                if benchmarks is None or name in benchmarks]
    sweep = run_sweep(SweepConfig(
        benchmarks=tuple(int_names + fp_names),
        policies=("conv", "basic"),
        register_sizes=tuple(sizes),
        trace_length=trace_length,
        base_config=base_config or ProcessorConfig()),
        parallel=parallel, cache=cache)
    return Section33Result(sizes=tuple(sizes), sweep=sweep,
                           int_benchmarks=int_names, fp_benchmarks=fp_names)
