"""Command line for ``repro-serve``::

    repro-serve --port 8713 --cache-dir /srv/repro-cache
    repro-serve --cache-backend https://cache.internal:8713  # tiered
    repro-experiments serve ...                              # same thing

Starts the stdlib asyncio HTTP front over the shared sweep-result store
and blocks until interrupted.  See ``docs/serving.md`` for the API.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

__all__ = ["serve_main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve sweep-point and export-artefact queries from the "
                    "shared result store over HTTP.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default: loopback only)")
    parser.add_argument("--port", type=int, default=8713,
                        help="TCP port (0 picks a free one; default: 8713)")
    parser.add_argument("--cache-dir", default=None,
                        help="root of the sweep result store (default: "
                             "$REPRO_SWEEP_CACHE or ~/.cache/repro/sweeps)")
    parser.add_argument("--cache-backend", default=None, metavar="SPEC",
                        help="result-store backend: 'local' (default), "
                             "'http(s)://HOST:PORT' for a tiered "
                             "local+remote store, or 'remote:URL' for "
                             "remote-only (default: $REPRO_CACHE_BACKEND)")
    parser.add_argument("--compute-threads", type=int, default=1,
                        help="concurrent cache-miss computations "
                             "(default: 1 — misses queue behind each other)")
    parser.add_argument("--max-workers", type=int, default=1,
                        help="sweep-runner processes per computation "
                             "(default: 1, in-process)")
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    from repro.analysis.backends import resolve_backend
    from repro.analysis.cache import SweepCache
    from repro.serve.http import HTTPServer
    from repro.serve.service import SweepService

    backend = resolve_backend(args.cache_backend, cache_dir=args.cache_dir)
    cache = SweepCache(backend=backend)
    service = SweepService(cache=cache,
                           compute_threads=args.compute_threads,
                           max_workers=args.max_workers)
    server = HTTPServer(service, host=args.host, port=args.port)

    async def _serve() -> None:
        await server.start()
        location = f"{server.url} (backend: {backend.name}"
        if cache.cache_dir is not None:
            location += f", store: {cache.cache_dir}"
        print(f"repro-serve listening on {location})", flush=True)
        reason = cache.degradation_reason()
        if reason:
            print(f"warning: {reason}", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro-serve: interrupted, shutting down", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve_main())
