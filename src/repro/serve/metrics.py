"""Service telemetry: counters and latency distributions.

``repro-serve`` exposes one ``/metrics`` endpoint returning a JSON
snapshot of everything here.  The design constraints are the service's
own: counters are updated from the asyncio loop *and* from compute
threads (so every mutation takes the lock), and latency percentiles are
computed over a bounded ring of recent observations — the serving layer
is long-lived, an unbounded list would be a slow leak and a full
histogram is overkill for a p50/p99 regression gate.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter, deque
from typing import Deque, Dict, Optional, Sequence


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (``fraction`` in [0, 1]).

    The nearest-rank definition keeps the value an *observed* sample —
    a p99 that was actually paid by a request — instead of an
    interpolated point between two of them.  Empty input returns 0.0.
    """
    if not samples:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(samples)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


class ServiceMetrics:
    """Thread-safe counters plus per-route latency rings."""

    def __init__(self, window: int = 4096) -> None:
        self.window = window
        self._lock = threading.Lock()
        self._counters: Counter = Counter()
        self._latencies: Dict[str, Deque[float]] = {}
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def count(self, name: str) -> int:
        with self._lock:
            return self._counters[name]

    def observe_latency(self, route: str, seconds: float) -> None:
        with self._lock:
            ring = self._latencies.get(route)
            if ring is None:
                ring = self._latencies[route] = deque(maxlen=self.window)
            ring.append(seconds)

    # ------------------------------------------------------------------
    def latency_summary(self, route: str) -> Optional[dict]:
        """count/p50/p99 (milliseconds) of one route's recent requests."""
        with self._lock:
            ring = self._latencies.get(route)
            samples = list(ring) if ring else []
        if not samples:
            return None
        return {
            "count": len(samples),
            "p50_ms": round(percentile(samples, 0.50) * 1000.0, 3),
            "p99_ms": round(percentile(samples, 0.99) * 1000.0, 3),
            "max_ms": round(max(samples) * 1000.0, 3),
        }

    def snapshot(self) -> dict:
        """The ``/metrics`` payload: counters, latencies, uptime."""
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            routes = list(self._latencies)
        latencies = {}
        for route in sorted(routes):
            summary = self.latency_summary(route)
            if summary is not None:
                latencies[route] = summary
        return {
            "uptime_s": round(time.monotonic() - self._started, 3),
            "counters": counters,
            "latency": latencies,
        }
