"""Run an :class:`~repro.serve.http.HTTPServer` on a background thread.

Shared by the tests, the load harness, the bench probe and the CI smoke
script: each needs a live server inside the current process (no
subprocess management, deterministic teardown) while the caller's own
thread drives blocking clients against it.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.analysis.cache import SweepCache
from repro.serve.http import HTTPServer
from repro.serve.service import SweepService

__all__ = ["BackgroundServer"]


class BackgroundServer:
    """A served :class:`SweepService` with its own event-loop thread.

    Usable as a context manager::

        with BackgroundServer(cache=SweepCache(tmp_path)) as server:
            client = ServeClient(server.url)
            ...

    ``start()`` returns only once the socket is bound (so ``url`` is
    immediately connectable) and ``stop()`` only once the loop thread
    has fully exited — no leaked threads between tests.
    """

    def __init__(self, cache: Optional[SweepCache] = None,
                 service: Optional[SweepService] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 compute_threads: int = 1, max_workers: int = 1) -> None:
        if service is None:
            service = SweepService(cache=cache,
                                   compute_threads=compute_threads,
                                   max_workers=max_workers)
        self.service = service
        self.server = HTTPServer(service, host=host, port=port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}")
        if not self._started.is_set():
            raise RuntimeError("server failed to start within 30s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._started.set()
            loop.run_forever()
            # Drain the shutdown initiated by stop().
            loop.run_until_complete(self.server.stop())
        finally:
            loop.close()
            asyncio.set_event_loop(None)

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30.0)
        self._loop = None
        self._thread = None

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return self.server.url

    @property
    def port(self) -> int:
        return self.server.port

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
