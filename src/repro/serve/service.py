"""The sweep service: request validation, single-flight, computation.

:class:`SweepService` is the transport-independent core of
``repro-serve``.  It answers *sweep-point* queries from the shared
result store (:class:`~repro.analysis.cache.SweepCache` over any
backend), computes misses through the existing
:class:`~repro.analysis.parallel.ParallelSweepRunner` sharding, and
dedupes concurrent identical requests **in flight**: requests are keyed
by the exact content-addressed point key, the first requester computes,
and every concurrent duplicate awaits the same future and receives the
*same response bytes* — N identical misses cost exactly one simulation.

Contract with clients:

* responses to concurrently deduped requests are byte-identical (the
  where-it-came-from tag travels in the ``X-Repro-Served-From`` header,
  never the body, so joined responses cannot differ);
* storage trouble — an unreachable remote cache backend, a read-only
  disk — degrades service-side and is *surfaced* in the response
  (``cache_degradation_reason``), never raised to the client;
* any computation failure is a structured ``{"error": ...}`` JSON with
  a 4xx/5xx status, never a dropped connection.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro.analysis.cache import SweepCache, point_key
from repro.analysis.sweep import SweepConfig, SweepPoint
from repro.pipeline.config import ProcessorConfig

__all__ = ["SweepService", "RequestError", "KEY_HEX_LENGTH"]

#: Length of a cache key (SHA-256 hex digest).
KEY_HEX_LENGTH = 64

#: Policies a request may name (the paper's release-policy axis).
_KNOWN_POLICIES = ("conv", "basic", "extended")

#: Engine backends a request may pin.
_KNOWN_ENGINES = ("python", "compiled")

#: Top-level request fields (anything else is a client error — silently
#: ignoring a misspelled knob would serve the wrong point).
_REQUEST_FIELDS = {"benchmark", "policy", "num_registers", "trace_length",
                   "seed", "engine", "config"}

#: ``ProcessorConfig`` overrides a request may set: scalar knobs only.
#: The structured fields (functional-unit maps, nested configs) stay
#: server-side — remote callers tune the axes the paper sweeps.
_SCALAR_TYPES = (bool, int, float, str)


class RequestError(ValueError):
    """A malformed sweep-point request (maps to HTTP 400)."""


def _config_field_index() -> Dict[str, object]:
    return {field.name: field for field in
            dataclasses.fields(ProcessorConfig)}


def parse_sweep_request(payload: dict) -> Tuple[SweepConfig, SweepPoint]:
    """Validate one sweep-point request into ``(SweepConfig, SweepPoint)``.

    Raises :class:`RequestError` naming the offending field; the
    validation mirrors the CLI's (unknown workload and policy names are
    errors listing the known values, not silent misses).
    """
    from repro.trace.workloads import all_workloads, has_workload

    if not isinstance(payload, dict):
        raise RequestError("request body must be a JSON object")
    unknown = sorted(set(payload) - _REQUEST_FIELDS)
    if unknown:
        raise RequestError(
            f"unknown request fields: {', '.join(unknown)}; known fields: "
            f"{', '.join(sorted(_REQUEST_FIELDS))}")

    benchmark = payload.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        raise RequestError("'benchmark' (string) is required")
    if not has_workload(benchmark):
        from repro.trace.workloads import scenario_workloads

        known = sorted(set(all_workloads()) | set(scenario_workloads()))
        raise RequestError(f"unknown benchmark {benchmark!r}; known "
                           f"workloads: {', '.join(known)}")

    policy = payload.get("policy", "conv")
    if policy not in _KNOWN_POLICIES:
        raise RequestError(f"unknown policy {policy!r}; known policies: "
                           f"{', '.join(_KNOWN_POLICIES)}")

    num_registers = payload.get("num_registers", 48)
    if not isinstance(num_registers, int) or isinstance(num_registers, bool) \
            or num_registers <= 0:
        raise RequestError("'num_registers' must be a positive integer")

    trace_length = payload.get("trace_length", 20_000)
    if not isinstance(trace_length, int) or isinstance(trace_length, bool) \
            or not 1 <= trace_length <= 10_000_000:
        raise RequestError("'trace_length' must be an integer in "
                           "[1, 10000000]")

    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise RequestError("'seed' must be an integer")

    overrides = dict(payload.get("config") or {})
    engine = payload.get("engine")
    if engine is not None:
        if engine not in _KNOWN_ENGINES:
            raise RequestError(f"unknown engine {engine!r}; known engines: "
                               f"{', '.join(_KNOWN_ENGINES)}")
        overrides["engine"] = engine

    fields = _config_field_index()
    base_config = ProcessorConfig()
    for name, value in overrides.items():
        if name not in fields:
            known = sorted(name for name in fields)
            raise RequestError(f"unknown config field {name!r}; known "
                               f"fields: {', '.join(known)}")
        if not isinstance(value, _SCALAR_TYPES):
            raise RequestError(f"config field {name!r} must be a scalar "
                               f"(bool/int/float/str)")
    if overrides:
        try:
            base_config = dataclasses.replace(base_config, **overrides)
        except (TypeError, ValueError) as exc:
            raise RequestError(f"invalid config overrides: {exc}") from None

    sweep_config = SweepConfig(
        benchmarks=(benchmark,), policies=(policy,),
        register_sizes=(num_registers,), trace_length=trace_length,
        seed=seed, base_config=base_config)
    return sweep_config, SweepPoint(benchmark, policy, num_registers)


def valid_cache_key(key: str) -> bool:
    """True for a well-formed content-addressed cache key."""
    return (len(key) == KEY_HEX_LENGTH
            and all(c in "0123456789abcdef" for c in key))


class SweepService:
    """Answers sweep-point, cache-blob and artefact queries.

    ``compute_threads`` sizes the executor that runs simulations (1 — the
    default — serialises computation: predictable latency, the mode the
    load probe and the smoke test pin); ``max_workers`` is forwarded to
    each computation's :class:`ParallelSweepRunner` for multi-point
    sharding within one request's sweep.
    """

    def __init__(self, cache: Optional[SweepCache] = None,
                 compute_threads: int = 1,
                 max_workers: int = 1) -> None:
        from repro.serve.metrics import ServiceMetrics

        self.cache = cache if cache is not None else SweepCache()
        self.metrics = ServiceMetrics()
        self.max_workers = max(1, max_workers)
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, compute_threads),
            thread_name_prefix="repro-serve-compute")
        #: single-flight table: point key -> future resolving to the
        #: finished response entry (status, headers, body bytes).
        self._inflight: Dict[str, "asyncio.Future"] = {}

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Sweep points
    # ------------------------------------------------------------------
    async def sweep_point(self, payload: dict) -> Tuple[int, dict, bytes]:
        """Answer one sweep-point query; single-flight on the point key.

        Returns ``(status, extra_headers, body_bytes)``.  Every error is
        a structured JSON body — clients never see a raw exception.
        """
        self.metrics.increment("sweep_requests")
        try:
            sweep_config, point = parse_sweep_request(payload)
        except RequestError as exc:
            self.metrics.increment("sweep_bad_requests")
            return 400, {}, _json_bytes({"error": str(exc)})

        try:
            # Deriving the key builds the point's ProcessorConfig, whose
            # own validation (e.g. fewer physical than logical registers)
            # is a client error, not a server fault.
            key = point_key(sweep_config, point)
        except (TypeError, ValueError) as exc:
            self.metrics.increment("sweep_bad_requests")
            return 400, {}, _json_bytes(
                {"error": f"invalid configuration: {exc}"})
        loop = asyncio.get_running_loop()
        existing = self._inflight.get(key)
        if existing is not None:
            # Joined flight: same bytes as the leader's response, with
            # only the served-from header differing.
            self.metrics.increment("sweep_joined")
            status, headers, body = await asyncio.shield(existing)
            headers = dict(headers)
            headers["X-Repro-Served-From"] = "joined"
            return status, headers, body

        future: "asyncio.Future" = loop.create_future()
        self._inflight[key] = future
        self.metrics.increment("sweep_leaders")
        try:
            status, headers, body = await loop.run_in_executor(
                self._executor, self._lookup_or_compute,
                sweep_config, point, key)
            future.set_result((status, headers, body))
        except BaseException as exc:
            # Never propagate a raw exception — to this client or any
            # joined one.  (A cancelled leader cancels its joiners too.)
            self.metrics.increment("sweep_errors")
            status, headers, body = 500, {"X-Repro-Served-From": "error"}, \
                _json_bytes({"error": f"{type(exc).__name__}: {exc}"})
            if not future.done():
                future.set_result((status, headers, body))
        finally:
            self._inflight.pop(key, None)
        return status, dict(headers), body

    def _lookup_or_compute(self, sweep_config: SweepConfig,
                           point: SweepPoint, key: str) -> Tuple[int, dict, bytes]:
        """Executor-side body of a leading request: cache, then compute."""
        stats = self.cache.get(sweep_config, point)
        compiled_fallback = None
        if stats is not None:
            self.metrics.increment("sweep_cache_hits")
            served_from = "cache"
        else:
            self.metrics.increment("sweep_cache_misses")
            self.metrics.increment("sweep_computations")
            served_from = "computed"
            from repro.analysis.parallel import ParallelSweepRunner
            from repro.analysis.sweep import _attach_scenario_profiles

            sweep_config = _attach_scenario_profiles(sweep_config)
            runner = ParallelSweepRunner(max_workers=self.max_workers)
            results = runner.run(sweep_config, [point])
            stats = results[point]
            compiled_fallback = runner.telemetry.get("fallback_reason")
            self.cache.put(sweep_config, point, stats)
        body = _json_bytes({
            "key": key,
            "point": {"benchmark": point.benchmark, "policy": point.policy,
                      "num_registers": point.num_registers},
            "trace_length": sweep_config.trace_length,
            "seed": sweep_config.seed,
            "stats": dataclasses.asdict(stats),
            "compiled_fallback_reason": compiled_fallback,
            "cache_degradation_reason": self.cache.degradation_reason(),
        })
        headers = {"X-Repro-Served-From": served_from, "X-Repro-Key": key}
        return 200, headers, body

    # ------------------------------------------------------------------
    # Cache blobs (the remote side of HTTPCacheBackend / TieredBackend)
    # ------------------------------------------------------------------
    def cache_get(self, key: str) -> Tuple[int, dict, bytes]:
        """Serve one stored entry, framed in the integrity envelope."""
        from repro.analysis.backends import wrap_envelope

        self.metrics.increment("cache_gets")
        if not valid_cache_key(key):
            return 400, {}, _json_bytes({"error": "malformed cache key"})
        body = self.cache.backend.get_blob(key)
        if body is None:
            self.metrics.increment("cache_get_misses")
            return 404, {}, _json_bytes({"error": "no such entry"})
        self.metrics.increment("cache_get_hits")
        return 200, {"Content-Type": "application/octet-stream"}, \
            wrap_envelope(key, body)

    def cache_put(self, key: str, blob: bytes) -> Tuple[int, dict, bytes]:
        """Accept one envelope-framed entry into the shared store.

        The envelope must verify against the key and its own content
        digest — a partial or misrouted upload is rejected with 400 and
        never lands in the store (the unreadable-bucket problem stays a
        client-side one).  Entries are stored unwrapped, so the server's
        own sweep-point path reads them exactly like locally computed
        results.
        """
        from repro.analysis.backends import unwrap_envelope

        self.metrics.increment("cache_puts")
        if not valid_cache_key(key):
            return 400, {}, _json_bytes({"error": "malformed cache key"})
        body = unwrap_envelope(key, blob)
        if body is None:
            self.metrics.increment("cache_put_rejects")
            return 400, {}, _json_bytes(
                {"error": "payload failed integrity verification "
                          "(envelope digest/key mismatch)"})
        if not self.cache.backend.put_blob(key, body):
            self.metrics.increment("cache_put_errors")
            return 507, {}, _json_bytes({"error": "store write failed"})
        return 204, {}, b""

    # ------------------------------------------------------------------
    # Export artefacts (the compiled backend's shared trace columns)
    # ------------------------------------------------------------------
    async def artefact(self, payload: dict) -> Tuple[int, dict, bytes]:
        """Describe (building on demand) one trace's export artefact.

        Answers with the artefact's identity and per-column shapes/bytes
        from the process-level export cache
        (:mod:`repro.engine.accel.artefacts`) — the query a remote
        scheduler needs to decide where a sweep's trace columns are
        already warm.
        """
        self.metrics.increment("artefact_requests")
        benchmark = payload.get("workload") if isinstance(payload, dict) else None
        trace_length = payload.get("trace_length", 20_000) \
            if isinstance(payload, dict) else 20_000
        seed = payload.get("seed", 0) if isinstance(payload, dict) else 0
        from repro.trace.workloads import has_workload

        if not isinstance(benchmark, str) or not has_workload(benchmark):
            self.metrics.increment("artefact_bad_requests")
            return 400, {}, _json_bytes(
                {"error": f"unknown workload {benchmark!r}"})
        if not isinstance(trace_length, int) or isinstance(trace_length, bool) \
                or not 1 <= trace_length <= 10_000_000:
            self.metrics.increment("artefact_bad_requests")
            return 400, {}, _json_bytes(
                {"error": "'trace_length' must be an integer in "
                          "[1, 10000000]"})
        loop = asyncio.get_running_loop()
        try:
            body = await loop.run_in_executor(
                self._executor, self._describe_artefact,
                benchmark, trace_length, seed)
        except Exception as exc:
            self.metrics.increment("artefact_errors")
            return 500, {}, _json_bytes(
                {"error": f"{type(exc).__name__}: {exc}"})
        return 200, {}, body

    def _describe_artefact(self, benchmark: str, trace_length: int,
                           seed: int) -> bytes:
        from repro.engine.accel.artefacts import EXPORT_CACHE
        from repro.trace.workloads import get_workload, workload_digest

        trace = get_workload(benchmark, trace_length, seed=seed)
        columns = EXPORT_CACHE.trace_columns(trace)
        hits, misses = EXPORT_CACHE.counters()
        return _json_bytes({
            "workload": benchmark,
            "workload_digest": workload_digest(benchmark, ()),
            "trace_length": trace_length,
            "seed": seed,
            "columns": {name: {"shape": list(array.shape),
                               "dtype": str(array.dtype),
                               "nbytes": int(array.nbytes)}
                        for name, array in sorted(columns.items())},
            "export_cache": {"hits": hits, "misses": misses},
        })

    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        snapshot = self.metrics.snapshot()
        snapshot["in_flight"] = len(self._inflight)
        snapshot["cache_backend"] = self.cache.backend.name
        snapshot["cache_degradation_reason"] = self.cache.degradation_reason()
        return snapshot


def _json_bytes(payload: dict) -> bytes:
    """Canonical response encoding: sorted keys, compact separators.

    Determinism is load-bearing — byte-identical bodies for deduped
    concurrent requests are part of the single-flight contract.
    """
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
