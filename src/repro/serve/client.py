"""Blocking stdlib client for a ``repro-serve`` endpoint.

Used by the load harness, the CI smoke script and tests; intentionally
plain ``urllib`` so it exercises exactly the transport a third-party
client would (fresh connection per request, no keep-alive, no retries —
retrying belongs to :class:`repro.analysis.backends.HTTPCacheBackend`,
not to a latency probe that must count every round trip it makes).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Optional, Tuple

__all__ = ["ServeClient", "ServeResponse"]


class ServeResponse:
    """One HTTP exchange: status, body bytes, selected headers."""

    def __init__(self, status: int, body: bytes,
                 served_from: Optional[str] = None) -> None:
        self.status = status
        self.body = body
        self.served_from = served_from

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ServeClient:
    """Talk to one server; every method returns a :class:`ServeResponse`
    (HTTP error statuses included) and only raises on transport failure
    (``URLError``/``OSError``)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: Optional[bytes] = None,
                 content_type: str = "application/json") -> ServeResponse:
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": content_type} if body is not None else {})
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return ServeResponse(resp.status, resp.read(),
                                     resp.headers.get("X-Repro-Served-From"))
        except urllib.error.HTTPError as exc:
            # An HTTP-level error is still an answer; read it out.
            return ServeResponse(exc.code, exc.read(),
                                 exc.headers.get("X-Repro-Served-From"))

    # ------------------------------------------------------------------
    def healthz(self) -> ServeResponse:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics").json()

    def sweep_point(self, benchmark: str, policy: str = "conv",
                    num_registers: int = 48, *,
                    trace_length: Optional[int] = None,
                    seed: Optional[int] = None,
                    engine: Optional[str] = None,
                    config: Optional[dict] = None) -> ServeResponse:
        payload = {"benchmark": benchmark, "policy": policy,
                   "num_registers": num_registers}
        if trace_length is not None:
            payload["trace_length"] = trace_length
        if seed is not None:
            payload["seed"] = seed
        if engine is not None:
            payload["engine"] = engine
        if config:
            payload["config"] = config
        return self._request("POST", "/v1/sweep-point",
                             json.dumps(payload).encode("utf-8"))

    def sweep_point_raw(self, payload: dict) -> ServeResponse:
        """Send an arbitrary (possibly invalid) request body."""
        return self._request("POST", "/v1/sweep-point",
                             json.dumps(payload).encode("utf-8"))

    def cache_get(self, key: str) -> ServeResponse:
        return self._request("GET", f"/v1/cache/{key}")

    def cache_put(self, key: str, blob: bytes) -> ServeResponse:
        return self._request("PUT", f"/v1/cache/{key}", blob,
                             content_type="application/octet-stream")

    def artefact(self, workload: str, trace_length: int = 20_000,
                 seed: int = 0) -> ServeResponse:
        payload = {"workload": workload, "trace_length": trace_length,
                   "seed": seed}
        return self._request("POST", "/v1/artefact",
                             json.dumps(payload).encode("utf-8"))


def parse_hostport(value: str, default_port: int = 8713) -> Tuple[str, int]:
    """``"host:port"`` / ``"host"`` / ``":port"`` -> ``(host, port)``."""
    host, _, port = value.rpartition(":")
    if not host:
        return (port or "127.0.0.1", default_port)
    return host, int(port)
