"""Minimal asyncio HTTP/1.1 transport for ``repro-serve``.

The service runs in environments where only the standard library is
available, so the transport is a small hand-rolled HTTP/1.1 server over
:func:`asyncio.start_server`: request line + headers + Content-Length
body in, status line + headers + body out, one request per connection
(``Connection: close`` — the stdlib ``urllib`` clients the repo ships
open a fresh connection per request anyway, and closing keeps the
parser trivially robust).

Routes::

    GET  /healthz           liveness (also reports backend degradation)
    GET  /metrics           JSON counters + latency percentiles
    POST /v1/sweep-point    answer one sweep point (single-flight)
    GET  /v1/cache/<key>    fetch one store entry (envelope-framed)
    PUT  /v1/cache/<key>    upload one store entry (envelope-verified)
    POST /v1/artefact       describe/build one export artefact

Everything interesting lives in :mod:`repro.serve.service`; this module
only parses, routes, times and serialises.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, Optional, Tuple

from repro.serve.service import SweepService

__all__ = ["HTTPServer", "MAX_BODY_BYTES", "MAX_HEADER_BYTES"]

#: Upload ceiling: a pickled sweep payload is tens of KiB; 32 MiB leaves
#: room for large traces' artefact metadata without letting one client
#: buffer the process into the ground.
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Header-section ceiling (request line included).
MAX_HEADER_BYTES = 32 * 1024

_REASONS = {200: "OK", 204: "No Content", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 500: "Internal Server Error",
            507: "Insufficient Storage"}


class HTTPServer:
    """Serve a :class:`SweepService` over loopback (or any interface)."""

    def __init__(self, service: SweepService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        # With port 0 the OS picks; surface the bound port for clients.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, body = parsed
            started = time.monotonic()
            status, headers, payload = await self._dispatch(method, path, body)
            self.service.metrics.observe_latency(
                _route_label(method, path), time.monotonic() - started)
            self.service.metrics.increment("http_requests")
            await self._write_response(writer, status, headers, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        except Exception as exc:  # absolute backstop: never drop silently
            self.service.metrics.increment("http_errors")
            try:
                await self._write_response(
                    writer, 500, {},
                    json.dumps({"error": f"{type(exc).__name__}: {exc}"},
                               sort_keys=True).encode("utf-8"))
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader,
                            ) -> Optional[Tuple[str, str, bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            return None
        if len(head) > MAX_HEADER_BYTES:
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], body

    async def _write_response(self, writer: asyncio.StreamWriter, status: int,
                              headers: Dict[str, str], body: bytes) -> None:
        reason = _REASONS.get(status, "Unknown")
        out = [f"HTTP/1.1 {status} {reason}"]
        merged = {"Content-Type": "application/json; charset=utf-8",
                  "Content-Length": str(len(body)),
                  "Connection": "close"}
        merged.update(headers)
        merged["Content-Length"] = str(len(body))
        for name, value in merged.items():
            out.append(f"{name}: {value}")
        writer.write(("\r\n".join(out) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, path: str, body: bytes,
                        ) -> Tuple[int, Dict[str, str], bytes]:
        service = self.service
        if path == "/healthz":
            if method != "GET":
                return _method_not_allowed("GET")
            return 200, {}, _json_bytes({
                "status": "ok",
                "cache_backend": service.cache.backend.name,
                "cache_degradation_reason": service.cache.degradation_reason(),
            })
        if path == "/metrics":
            if method != "GET":
                return _method_not_allowed("GET")
            return 200, {}, _json_bytes(service.metrics_snapshot())
        if path == "/v1/sweep-point":
            if method != "POST":
                return _method_not_allowed("POST")
            payload, error = _parse_json(body)
            if error is not None:
                return 400, {}, _json_bytes({"error": error})
            return await service.sweep_point(payload)
        if path.startswith("/v1/cache/"):
            key = path[len("/v1/cache/"):]
            if method == "GET":
                return service.cache_get(key)
            if method == "PUT":
                return service.cache_put(key, body)
            return _method_not_allowed("GET, PUT")
        if path == "/v1/artefact":
            if method != "POST":
                return _method_not_allowed("POST")
            payload, error = _parse_json(body)
            if error is not None:
                return 400, {}, _json_bytes({"error": error})
            return await service.artefact(payload)
        return 404, {}, _json_bytes({"error": f"no such route: {path}"})


def _route_label(method: str, path: str) -> str:
    if path.startswith("/v1/cache/"):
        return f"{method} /v1/cache"
    return f"{method} {path}"


def _method_not_allowed(allowed: str) -> Tuple[int, Dict[str, str], bytes]:
    return 405, {"Allow": allowed}, _json_bytes(
        {"error": f"method not allowed; use {allowed}"})


def _parse_json(body: bytes) -> Tuple[Optional[dict], Optional[str]]:
    if not body:
        return None, "request body must be a JSON object"
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return None, f"invalid JSON body: {exc}"
    if not isinstance(payload, dict):
        return None, "request body must be a JSON object"
    return payload, None


def _json_bytes(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
