"""``repro-serve``: an HTTP service front over the sweep-result store.

The paper's experiments are batch sweeps; this package turns the same
machinery into a long-lived query service.  A stdlib-only asyncio HTTP
server (:mod:`repro.serve.http`) answers *sweep-point* and
*export-artefact* queries from the shared content-addressed store
(:class:`repro.analysis.cache.SweepCache` over any
:class:`repro.analysis.backends.CacheBackend`), computes misses through
the existing :class:`repro.analysis.parallel.ParallelSweepRunner`
sharding, dedupes concurrent identical requests in flight
(:mod:`repro.serve.service`), and exposes hit/miss/in-flight counters
plus latency percentiles on ``/metrics``
(:mod:`repro.serve.metrics`).

Entry points: the ``repro-serve`` console script / ``python -m
repro.serve`` (:mod:`repro.serve.cli`), the blocking
:class:`~repro.serve.client.ServeClient`, the in-process
:class:`~repro.serve.runtime.BackgroundServer` test/bench helper, and
the zipf load harness (:mod:`repro.serve.loadgen`, fronted by
``scripts/bench_serve.py``).  The HTTP API is documented in
``docs/serving.md``.
"""

from repro.serve.client import ServeClient, ServeResponse
from repro.serve.http import HTTPServer
from repro.serve.metrics import ServiceMetrics, percentile
from repro.serve.runtime import BackgroundServer
from repro.serve.service import RequestError, SweepService

__all__ = [
    "BackgroundServer",
    "HTTPServer",
    "RequestError",
    "ServeClient",
    "ServeResponse",
    "ServiceMetrics",
    "SweepService",
    "percentile",
]
