"""``python -m repro.serve`` — start the sweep service."""

import sys

from repro.serve.cli import serve_main

if __name__ == "__main__":
    sys.exit(serve_main())
