"""Load generation against a ``repro-serve`` endpoint.

Models the access pattern a shared sweep service actually sees: many
concurrent clients whose scenario popularity is zipf-skewed — a few hot
(benchmark, policy, register-size) points dominate, with a long tail of
rare ones.  The skew is what makes the cache + single-flight layer
earn its keep, and the resulting hit rate and latency percentiles are
the numbers the bench gate tracks (``BENCH_*.json`` ``"serve"``
section; see ``scripts/bench_serve.py``).
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.serve.client import ServeClient
from repro.serve.metrics import percentile

__all__ = ["ZipfSampler", "build_request_pool", "run_load",
           "collect_serve_report", "format_report"]

#: Policies cycled through the request pool.
_POOL_POLICIES = ("conv", "basic", "extended")

#: Register-file sizes cycled through the request pool (all large enough
#: to never deadlock rename against the logical register count).
_POOL_SIZES = (48, 64, 96)


class ZipfSampler:
    """Sample ranks ``0..n-1`` with probability proportional to
    ``1 / (rank + 1) ** skew`` (rank 0 the most popular).

    ``skew`` around 1.0 gives the classic few-hot/long-tail popularity;
    0.0 degenerates to uniform.  Deterministic for a given seed.
    """

    def __init__(self, n: int, skew: float = 1.1, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if skew < 0.0:
            raise ValueError("skew must be non-negative")
        self.n = n
        self.skew = skew
        self._random = random.Random(seed)
        weights = [1.0 / float(rank + 1) ** skew for rank in range(n)]
        total = sum(weights)
        cumulative, acc = [], 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0    # guard against float round-down
        self._cumulative = cumulative

    def sample(self) -> int:
        import bisect

        return bisect.bisect_left(self._cumulative, self._random.random())


def build_request_pool(pool_size: int, trace_length: int = 2_000,
                       seed: int = 0,
                       workloads: Optional[Sequence[str]] = None,
                       ) -> List[dict]:
    """Distinct sweep-point request bodies, popularity-rank ordered.

    The pool cycles workloads fastest (so the hot head of the zipf
    distribution spans several benchmarks, not one benchmark's policy
    grid), then policies, then register sizes.
    """
    if workloads is None:
        from repro.trace.workloads import integer_workloads, fp_workloads

        workloads = tuple(integer_workloads() + fp_workloads())
    if pool_size <= 0:
        raise ValueError("pool_size must be positive")
    pool = []
    index = 0
    while len(pool) < pool_size:
        benchmark = workloads[index % len(workloads)]
        policy = _POOL_POLICIES[(index // len(workloads)) % len(_POOL_POLICIES)]
        size = _POOL_SIZES[(index // (len(workloads) * len(_POOL_POLICIES)))
                           % len(_POOL_SIZES)]
        pool.append({"benchmark": benchmark, "policy": policy,
                     "num_registers": size, "trace_length": trace_length,
                     "seed": seed})
        index += 1
    return pool


def run_load(url: str, *, clients: int = 8, total_requests: int = 200,
             pool_size: int = 24, zipf_skew: float = 1.1,
             trace_length: int = 2_000, seed: int = 0,
             timeout: float = 120.0,
             pool: Optional[List[dict]] = None) -> dict:
    """Drive ``total_requests`` zipf-sampled requests from ``clients``
    concurrent threads; return the latency/hit-rate report.

    Every client thread owns a deterministic sampler (``seed`` + client
    index), so a run is reproducible modulo scheduling.  ``hit_rate``
    counts every request that did *not* trigger a fresh computation —
    cache hits plus single-flight joins — which is the fraction of
    offered load the service absorbed without simulating.
    """
    if clients <= 0 or total_requests <= 0:
        raise ValueError("clients and total_requests must be positive")
    if pool is None:
        pool = build_request_pool(pool_size, trace_length=trace_length,
                                  seed=seed)
    lock = threading.Lock()
    latencies: List[float] = []
    served_from: Dict[str, int] = {}
    statuses: Dict[int, int] = {}
    transport_errors = [0]

    shares = [total_requests // clients] * clients
    for extra in range(total_requests % clients):
        shares[extra] += 1

    def client_main(client_index: int, count: int) -> None:
        sampler = ZipfSampler(len(pool), skew=zipf_skew,
                              seed=seed * 1_000_003 + client_index)
        client = ServeClient(url, timeout=timeout)
        for _ in range(count):
            payload = pool[sampler.sample()]
            started = time.perf_counter()
            try:
                response = client.sweep_point_raw(payload)
            except OSError:
                with lock:
                    transport_errors[0] += 1
                continue
            elapsed = time.perf_counter() - started
            origin = response.served_from or "unknown"
            with lock:
                latencies.append(elapsed)
                served_from[origin] = served_from.get(origin, 0) + 1
                statuses[response.status] = statuses.get(response.status,
                                                         0) + 1

    threads = [threading.Thread(target=client_main, args=(index, share),
                                name=f"loadgen-{index}")
               for index, share in enumerate(shares) if share]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    answered = len(latencies)
    computed = served_from.get("computed", 0)
    absorbed = served_from.get("cache", 0) + served_from.get("joined", 0)
    return {
        "clients": clients,
        "requests": total_requests,
        "answered": answered,
        "pool_size": len(pool),
        "zipf_skew": zipf_skew,
        "trace_length": trace_length,
        "seed": seed,
        "wall_clock_s": round(wall, 4),
        "requests_per_s": round(answered / wall, 3) if wall else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1000.0, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1000.0, 3),
        "max_ms": round(max(latencies) * 1000.0, 3) if latencies else 0.0,
        "hit_rate": round(absorbed / answered, 4) if answered else 0.0,
        "computations": computed,
        "served_from": dict(sorted(served_from.items())),
        "statuses": {str(code): count
                     for code, count in sorted(statuses.items())},
        "errors": (transport_errors[0]
                   + sum(count for code, count in statuses.items()
                         if code >= 400)),
    }


def collect_serve_report(url: Optional[str] = None, *, clients: int = 8,
                         requests: int = 200, pool_size: int = 24,
                         zipf_skew: float = 1.1, trace_length: int = 2_000,
                         seed: int = 0,
                         cache_dir: Optional[str] = None) -> dict:
    """Run one load probe, self-hosting a server unless ``url`` is given.

    Self-hosted runs (the bench-gate mode) spin a
    :class:`~repro.serve.runtime.BackgroundServer` with a serial compute
    worker over ``cache_dir`` (a fresh temporary directory by default,
    so every first touch is a genuine miss) and embed the server's own
    degradation state and counters in the report — a degraded or
    error-laden run is visibly marked and excluded from the gate.
    """
    if url is not None:
        report = run_load(url, clients=clients, total_requests=requests,
                          pool_size=pool_size, zipf_skew=zipf_skew,
                          trace_length=trace_length, seed=seed)
        report["self_hosted"] = False
        return report

    import tempfile

    from repro.analysis.cache import SweepCache
    from repro.serve.runtime import BackgroundServer

    store = cache_dir or tempfile.mkdtemp(prefix="repro-serve-bench-")
    with BackgroundServer(cache=SweepCache(store)) as server:
        report = run_load(server.url, clients=clients,
                          total_requests=requests, pool_size=pool_size,
                          zipf_skew=zipf_skew, trace_length=trace_length,
                          seed=seed)
        snapshot = server.service.metrics_snapshot()
    report["self_hosted"] = True
    report["cache_degradation_reason"] = snapshot["cache_degradation_reason"]
    report["server_counters"] = snapshot["counters"]
    return report


def format_report(report: dict) -> str:
    """Human/CI-readable recap of one load run."""
    lines = [
        f"serve load probe ({report['clients']} clients, "
        f"{report['requests']} requests over a {report['pool_size']}-point "
        f"pool, zipf skew {report['zipf_skew']:g}, trace length "
        f"{report['trace_length']}):",
        f"  wall {report['wall_clock_s']:.2f}s; "
        f"{report['requests_per_s']:,.1f} requests/s",
        f"  latency p50 {report['p50_ms']:.1f} ms, "
        f"p99 {report['p99_ms']:.1f} ms, max {report['max_ms']:.1f} ms",
        f"  hit rate {report['hit_rate']:.1%} "
        f"({report['computations']} computations; served_from "
        f"{report['served_from']})",
        f"  errors: {report['errors']}",
    ]
    degradation = report.get("cache_degradation_reason")
    if degradation:
        lines.append(f"  DEGRADED: {degradation}")
    return "\n".join(lines)
