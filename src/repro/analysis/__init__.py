"""Analysis layer: metrics, sweeps, parallel execution and reporting.

This package turns raw :class:`repro.pipeline.stats.SimStats` objects into
the quantities the paper reports (harmonic-mean IPC, speedups, iso-IPC
register savings, Empty/Ready/Idle occupancy breakdowns) and provides the
sweep driver used by the Figure 10/11 and Table 4 experiments, including a
multiprocessing runner that shards the embarrassingly parallel
(benchmark, policy, register-file size) simulation points in chunks across
a process pool, and a persistent on-disk result cache so repeated sweeps
only simulate points never simulated before.
"""

from repro.analysis.backends import (
    CacheBackend,
    HTTPCacheBackend,
    LocalDirBackend,
    TieredBackend,
    resolve_backend,
)
from repro.analysis.cache import SweepCache, config_digest, point_key

from repro.analysis.metrics import (
    harmonic_mean,
    geometric_mean,
    speedup,
    percentage_speedup,
    iso_ipc_register_requirement,
)
from repro.analysis.sweep import (
    SweepPoint,
    SweepResult,
    SweepConfig,
    run_sweep,
    run_simulation_point,
)
from repro.analysis.parallel import ParallelSweepRunner, available_workers
from repro.analysis.occupancy import occupancy_breakdown, OccupancyRow
from repro.analysis.reporting import (
    format_table,
    format_series,
    ascii_bar_chart,
    format_percent,
)

__all__ = [
    "CacheBackend",
    "LocalDirBackend",
    "HTTPCacheBackend",
    "TieredBackend",
    "resolve_backend",
    "SweepCache",
    "config_digest",
    "point_key",
    "harmonic_mean",
    "geometric_mean",
    "speedup",
    "percentage_speedup",
    "iso_ipc_register_requirement",
    "SweepPoint",
    "SweepResult",
    "SweepConfig",
    "run_sweep",
    "run_simulation_point",
    "ParallelSweepRunner",
    "available_workers",
    "occupancy_breakdown",
    "OccupancyRow",
    "format_table",
    "format_series",
    "ascii_bar_chart",
    "format_percent",
]
