"""Plain-text rendering of tables and figure series.

Every experiment regenerates its table or figure as text: fixed-width
tables for the paper's tables, and series listings / ASCII bar charts for
the figures, so the whole evaluation can be reproduced in a terminal with
no plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def format_percent(value: float, digits: int = 1) -> str:
    """Format a percentage value with a sign (e.g. ``+6.2%``)."""
    return f"{value:+.{digits}f}%"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None, float_digits: int = 3) -> str:
    """Render a fixed-width text table.

    Floats are rounded to ``float_digits``; every other cell is rendered
    with ``str``.  Column widths adapt to the content.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{float_digits}f}"
        return str(cell)

    rendered_rows = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths, strict=True))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row(list(headers)))
    lines.append(format_row(["-" * width for width in widths]))
    lines.extend(format_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(series: Dict[str, Sequence[Tuple[float, float]]],
                  x_label: str, y_label: str,
                  title: Optional[str] = None, float_digits: int = 3) -> str:
    """Render one or more (x, y) series as a merged text table.

    ``series`` maps a series name (e.g. "conv", "basic", "extended") to a
    list of (x, y) points; all series are assumed to share the x values.
    """
    names = list(series)
    if not names:
        return title or ""
    xs = [x for x, _ in series[names[0]]]
    headers = [x_label] + [f"{name} {y_label}" for name in names]
    rows = []
    for index, x in enumerate(xs):
        row: List[object] = [x]
        for name in names:
            row.append(series[name][index][1])
        rows.append(row)
    return format_table(headers, rows, title=title, float_digits=float_digits)


def ascii_bar_chart(values: Dict[str, float], width: int = 50,
                    title: Optional[str] = None, unit: str = "") -> str:
    """Render a horizontal ASCII bar chart (used for the Figure 3 bars)."""
    if not values:
        return title or ""
    maximum = max(values.values())
    label_width = max(len(label) for label in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in values.items():
        bar_length = 0 if maximum <= 0 else int(round(width * value / maximum))
        lines.append(f"{label.ljust(label_width)} | "
                     f"{'#' * bar_length} {value:.2f}{unit}")
    return "\n".join(lines)
