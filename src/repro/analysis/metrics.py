"""Performance metrics used by the paper's evaluation.

The paper reports per-benchmark IPC (Figure 10), harmonic-mean IPC across
each suite (Figures 10 and 11), relative speedups of the early-release
policies over conventional release (Sections 3.3 and 5.1), and the
register-file size needed to reach a given IPC (Table 4).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean (the paper's "Hm" bars in Figures 10 and 11).

    Raises :class:`ValueError` on an empty input or non-positive values —
    the harmonic mean of IPCs is undefined for zero throughput.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("harmonic mean of an empty sequence is undefined")
    if np.any(data <= 0):
        raise ValueError("harmonic mean requires strictly positive values")
    return float(data.size / np.sum(1.0 / data))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (used by some ablation reports)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("geometric mean of an empty sequence is undefined")
    if np.any(data <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(data))))


def speedup(new_ipc: float, baseline_ipc: float) -> float:
    """Relative speedup ``new / baseline`` (1.0 = no change)."""
    if baseline_ipc <= 0:
        raise ValueError("baseline IPC must be positive")
    return new_ipc / baseline_ipc


def percentage_speedup(new_ipc: float, baseline_ipc: float) -> float:
    """Speedup expressed as a percentage gain (the paper's "6 % speedup")."""
    return (speedup(new_ipc, baseline_ipc) - 1.0) * 100.0


def iso_ipc_register_requirement(sizes: Sequence[int], ipcs: Sequence[float],
                                 target_ipc: float) -> Optional[float]:
    """Smallest register-file size achieving ``target_ipc``.

    ``sizes``/``ipcs`` describe one policy's IPC-vs-registers curve
    (Figure 11); the answer is found by linear interpolation between the
    two bracketing points, which is how Table 4 ("register file sizes
    giving equal IPC") is derived from the sweep.  Returns ``None`` when
    the target exceeds the curve's maximum.
    """
    if len(sizes) != len(ipcs):
        raise ValueError("sizes and ipcs must have the same length")
    if not sizes:
        return None
    order = np.argsort(sizes)
    sizes_arr = np.asarray(sizes, dtype=float)[order]
    ipcs_arr = np.asarray(ipcs, dtype=float)[order]
    # IPC is (essentially) monotone in the register count; walk until the
    # target is reached.
    for index, (size, ipc) in enumerate(zip(sizes_arr, ipcs_arr, strict=True)):
        if ipc >= target_ipc:
            if index == 0:
                return float(size)
            prev_size, prev_ipc = sizes_arr[index - 1], ipcs_arr[index - 1]
            if ipc == prev_ipc:
                return float(size)
            fraction = (target_ipc - prev_ipc) / (ipc - prev_ipc)
            return float(prev_size + fraction * (size - prev_size))
    return None


def summarize_speedups(ipc_by_benchmark: Dict[str, Dict[str, float]],
                       baseline: str = "conv") -> Dict[str, Dict[str, float]]:
    """Per-benchmark percentage speedups of every policy over ``baseline``.

    ``ipc_by_benchmark`` maps benchmark → policy → IPC; the result maps
    benchmark → policy → percentage speedup (the baseline maps to 0.0).
    """
    result: Dict[str, Dict[str, float]] = {}
    for benchmark, by_policy in ipc_by_benchmark.items():
        base = by_policy[baseline]
        result[benchmark] = {
            policy: percentage_speedup(ipc, base) for policy, ipc in by_policy.items()
        }
    return result
