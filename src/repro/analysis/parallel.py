"""Multiprocessing execution of simulation sweeps.

Each (benchmark, policy, register-size) point of a sweep is an independent
cycle-level simulation, so the sweep is embarrassingly parallel.  This is
the pattern the session's HPC guides (and the mpi4py tutorial's
scatter/gather examples) recommend: leave the inner simulation loop alone
and parallelise the outer loop over independent work items.  On the target
machines MPI is not available, so a :class:`concurrent.futures`
process pool provides the workers.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.sweep import SweepConfig, SweepPoint
    from repro.pipeline.stats import SimStats


def available_workers(max_workers: Optional[int] = None) -> int:
    """Number of worker processes to use (bounded by the CPU count)."""
    cpu_count = os.cpu_count() or 1
    if max_workers is None:
        return max(1, cpu_count - 1)
    return max(1, min(max_workers, cpu_count))


def _run_point(sweep_config: "SweepConfig", point: "SweepPoint") -> "SimStats":
    """Worker entry point (module level so it can be pickled)."""
    from repro.analysis.sweep import run_simulation_point

    return run_simulation_point(sweep_config, point)


class ParallelSweepRunner:
    """Runs sweep points on a process pool and gathers the results."""

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = available_workers(max_workers)

    def run(self, sweep_config: "SweepConfig",
            points: Sequence["SweepPoint"]) -> Dict["SweepPoint", "SimStats"]:
        """Run every point and return ``{point: stats}``.

        Work is submitted point-by-point (rather than chunked) because the
        simulation times of different points vary widely — small register
        files and branch-heavy benchmarks take longer per instruction — and
        fine-grained scheduling keeps all workers busy until the end.
        """
        results: Dict["SweepPoint", "SimStats"] = {}
        if not points:
            return results
        workers = min(self.max_workers, len(points))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_run_point, sweep_config, point): point
                       for point in points}
            for future in as_completed(futures):
                point = futures[future]
                results[point] = future.result()
        return results
