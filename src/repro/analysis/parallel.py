"""Multiprocessing execution of simulation sweeps.

Each (benchmark, policy, register-size) point of a sweep is an independent
cycle-level simulation, so the sweep is embarrassingly parallel.  This is
the pattern the session's HPC guides (and the mpi4py tutorial's
scatter/gather examples) recommend: leave the inner simulation loop alone
and parallelise the outer loop over independent work items.  On the target
machines MPI is not available, so a :class:`concurrent.futures`
process pool provides the workers.

Work is sharded in *chunks*: submitting every point as its own future
costs one pickled ``SweepConfig`` round-trip and one scheduling decision
per point, which dominates for the short simulations of quick sweeps.
The default chunk size targets four chunks per worker — small enough that
slow points (tight register files, branch-heavy benchmarks) still balance
across the pool, large enough to amortise the per-future overhead.
"""

from __future__ import annotations

import gc
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.sweep import SweepConfig, SweepPoint
    from repro.pipeline.stats import SimStats


def available_workers(max_workers: Optional[int] = None) -> int:
    """Number of worker processes to use (bounded by the CPU count)."""
    cpu_count = os.cpu_count() or 1
    if max_workers is None:
        return max(1, cpu_count - 1)
    return max(1, min(max_workers, cpu_count))


def default_chunk_size(n_points: int, workers: int) -> int:
    """Chunk size giving roughly four chunks per worker."""
    return max(1, n_points // (workers * 4))


def _empty_telemetry() -> Dict:
    return {"export_cache_hits": 0, "export_cache_misses": 0,
            "fallback_chunks": 0, "fallback_reason": None}


def _run_chunk(sweep_config: "SweepConfig", chunk: Sequence["SweepPoint"],
               ) -> Tuple[List[Tuple["SweepPoint", "SimStats"]], Dict]:
    """Worker entry point for one shard of points.

    Returns the ``(point, stats)`` pairs plus per-chunk telemetry: the
    export-artefact cache hit/miss deltas and — with the per-worker
    warning suppressed — whether this process fell back from a requested
    compiled backend, so the parent can log one summary for the whole
    sweep instead of one warning per worker.
    """
    from repro.analysis.sweep import run_simulation_point
    from repro.engine import accel
    from repro.engine.accel.artefacts import EXPORT_CACHE

    hits_before, misses_before = EXPORT_CACHE.counters()
    with accel.suppressed_backend_warnings():
        pairs = [(point, run_simulation_point(sweep_config, point))
                 for point in chunk]
    hits_after, misses_after = EXPORT_CACHE.counters()
    meta = {
        "export_cache_hits": hits_after - hits_before,
        "export_cache_misses": misses_after - misses_before,
        "compiled_fallback": accel.backend_fallback_reason(),
    }
    return pairs, meta


class ParallelSweepRunner:
    """Runs sweep points on a process pool and gathers the results."""

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = available_workers(max_workers)
        #: telemetry aggregated over the chunks of the last :meth:`run`:
        #: export-artefact cache hits/misses, and how many chunks ran in a
        #: process that fell back from a requested compiled backend (with
        #: one representative reason).  The sweep driver folds this into
        #: ``SweepResult`` and emits a single fallback summary.
        self.telemetry: Dict = _empty_telemetry()

    def run(self, sweep_config: "SweepConfig",
            points: Sequence["SweepPoint"],
            chunk_size: Optional[int] = None,
            on_result: Optional[Callable[["SweepPoint", "SimStats"], None]] = None,
            ) -> Dict["SweepPoint", "SimStats"]:
        """Run every point and return ``{point: stats}``.

        ``chunk_size`` overrides the number of points per shard (see the
        module docstring for the default's rationale).  ``on_result`` is
        invoked in this process for every point as its chunk completes —
        the sweep driver uses it to persist results incrementally, so a
        crash mid-sweep keeps everything already simulated.
        """
        results: Dict["SweepPoint", "SimStats"] = {}
        self.telemetry = _empty_telemetry()
        if not points:
            return results
        workers = min(self.max_workers, len(points))
        if chunk_size is None:
            chunk_size = default_chunk_size(len(points), workers)
        chunks = [list(points[start:start + chunk_size])
                  for start in range(0, len(points), chunk_size)]
        if workers == 1:
            # No parallelism to gain: a single-worker pool would only add
            # process spawn, argument/result pickling and a cold
            # per-process workload cache (the worker regenerates every
            # trace the parent already holds).  Run the shards in-process.
            # Freeze the caller's heap first: a worker process would have
            # started with a clean heap, whereas a long-lived caller
            # (e.g. a test session) drags its live objects through every
            # generational GC pass of the simulation's object churn.
            gc.collect()
            gc.freeze()
            try:
                for chunk in chunks:
                    pairs, meta = _run_chunk(sweep_config, chunk)
                    self._fold_telemetry(meta)
                    for point, stats in pairs:
                        results[point] = stats
                        if on_result is not None:
                            on_result(point, stats)
            finally:
                gc.unfreeze()
            return results
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_chunk, sweep_config, chunk)
                       for chunk in chunks]
            for future in as_completed(futures):
                pairs, meta = future.result()
                self._fold_telemetry(meta)
                for point, stats in pairs:
                    results[point] = stats
                    if on_result is not None:
                        on_result(point, stats)
        return results

    def _fold_telemetry(self, meta: Dict) -> None:
        telemetry = self.telemetry
        telemetry["export_cache_hits"] += meta.get("export_cache_hits", 0)
        telemetry["export_cache_misses"] += meta.get("export_cache_misses", 0)
        reason = meta.get("compiled_fallback")
        if reason is not None:
            telemetry["fallback_chunks"] += 1
            telemetry["fallback_reason"] = reason
