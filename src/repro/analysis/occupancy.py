"""Register occupancy analysis (paper Figure 3).

Figure 3 shows, for every benchmark under conventional renaming with 96
physical registers per file, the average number of allocated registers
split into Empty, Ready and Idle — and points out that the Idle fraction
(registers the early-release schemes can reclaim) inflates the *used*
register count by 45.8 % for the integer programs and 16.8 % for the FP
programs.  The helpers here turn simulation statistics into those rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.register_state import OccupancyAverages
from repro.pipeline.stats import SimStats


@dataclass(frozen=True)
class OccupancyRow:
    """One bar of Figure 3: a benchmark's Empty/Ready/Idle averages."""

    benchmark: str
    register_class: str
    empty: float
    ready: float
    idle: float

    @property
    def allocated(self) -> float:
        """Average number of allocated registers."""
        return self.empty + self.ready + self.idle

    @property
    def used(self) -> float:
        """Average number of used (empty + ready) registers."""
        return self.empty + self.ready

    @property
    def idle_overhead_percent(self) -> float:
        """Idle registers as a percentage of used registers (paper Section 2)."""
        return 0.0 if self.used == 0 else 100.0 * self.idle / self.used


def occupancy_breakdown(stats: SimStats, focus: str,
                        label: Optional[str] = None) -> OccupancyRow:
    """Extract the Figure 3 row of one simulation.

    ``focus`` selects the register file the paper reports for the
    benchmark: ``"int"`` for the integer programs, ``"fp"`` for the FP
    programs.  ``label`` overrides the row's benchmark label — the
    scenario-level per-phase figure uses it to report phases ("phase 0
    (int_compute)") instead of the internal derived workload names.
    """
    register_stats = stats.register_stats(focus)
    averages: OccupancyAverages = register_stats.occupancy or OccupancyAverages(0, 0, 0)
    return OccupancyRow(benchmark=label if label is not None else stats.benchmark,
                        register_class=focus,
                        empty=averages.empty, ready=averages.ready,
                        idle=averages.idle)


def mean_row(rows: Sequence[OccupancyRow], label: str = "Amean") -> OccupancyRow:
    """Arithmetic-mean row (the paper's "Amean" bar)."""
    if not rows:
        raise ValueError("cannot average an empty set of occupancy rows")
    register_class = rows[0].register_class
    n = len(rows)
    return OccupancyRow(
        benchmark=label,
        register_class=register_class,
        empty=sum(row.empty for row in rows) / n,
        ready=sum(row.ready for row in rows) / n,
        idle=sum(row.idle for row in rows) / n,
    )


def idle_overhead_percent(rows: Iterable[OccupancyRow]) -> float:
    """Suite-level idle overhead: mean idle as a percentage of mean used.

    This is how the paper aggregates to "45.8 % for integer programs, and
    16.8 % for FP programs".
    """
    rows = list(rows)
    averaged = mean_row(rows)
    return averaged.idle_overhead_percent
