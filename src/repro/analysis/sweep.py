"""Simulation sweep driver (the engine behind Figures 10/11 and Table 4).

A *sweep* is the cross product of benchmarks × release policies ×
register-file sizes, each point being one cycle-level simulation.  The
driver layers three mechanisms over that cross product:

* a persistent on-disk **result cache** (:mod:`repro.analysis.cache`)
  keyed by (workload, config hash, trace length, seed), so regenerating a
  figure after a partial sweep only simulates the missing points;
* **chunked work-sharding** across the multiprocessing pool of
  :mod:`repro.analysis.parallel` (each point is independent — the
  "parallelise the outer loop" pattern of HPC simulator design);
* the :class:`SweepResult` accessors the experiment modules need
  (per-point stats, harmonic-mean IPC curves, iso-IPC sizes, merging).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.cache import SweepCache, resolve_cache
from repro.analysis.metrics import harmonic_mean, iso_ipc_register_requirement
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import simulate
from repro.pipeline.stats import SimStats
from repro.trace.workloads import (SCENARIOS, ScenarioProfile, get_workload,
                                   install_ephemeral_profiles)


@dataclass(frozen=True)
class SweepPoint:
    """One simulation point of a sweep."""

    benchmark: str
    policy: str
    num_registers: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.benchmark}/{self.policy}/P{self.num_registers}"


@dataclass(frozen=True)
class SweepConfig:
    """Parameters shared by every point of a sweep.

    ``num_registers`` of a point is applied to *both* the integer and the
    FP file, exactly as the paper's "48int + 48FP" configurations.

    ``scenario_profiles`` carries the scenario profiles behind any
    non-built-in workload names in ``benchmarks``.  Pool worker processes
    import a fresh registry that only contains the built-in scenarios, so
    user-registered (or derived, e.g. per-phase) profiles must travel
    with the sweep config; :func:`run_sweep` attaches registered ones
    automatically.
    """

    benchmarks: Tuple[str, ...]
    policies: Tuple[str, ...] = ("conv", "basic", "extended")
    register_sizes: Tuple[int, ...] = (48,)
    trace_length: int = 20_000
    seed: int = 0
    base_config: ProcessorConfig = field(default_factory=ProcessorConfig)
    scenario_profiles: Tuple[ScenarioProfile, ...] = ()

    def points(self) -> List[SweepPoint]:
        """Enumerate every simulation point of the sweep."""
        return [SweepPoint(benchmark, policy, size)
                for benchmark in self.benchmarks
                for policy in self.policies
                for size in self.register_sizes]

    def config_for(self, point: SweepPoint) -> ProcessorConfig:
        """Processor configuration of one sweep point."""
        return replace(self.base_config,
                       release_policy=point.policy,
                       num_physical_int=point.num_registers,
                       num_physical_fp=point.num_registers)


def run_simulation_point(sweep_config: SweepConfig, point: SweepPoint) -> SimStats:
    """Run the single simulation of ``point`` (used by both serial and
    parallel execution paths; must stay a module-level function so the
    multiprocessing runner can pickle it)."""
    # Make the shipped profiles resolvable *by name* in this process too:
    # the simulator's warm-up pass re-resolves ``trace.name`` (different
    # seed) through the plain registry lookup, which in a pool worker
    # would otherwise miss user-registered scenarios and silently warm up
    # with a different trace than a serial run — same cache key, different
    # stats.
    install_ephemeral_profiles(sweep_config.scenario_profiles)
    trace = get_workload(point.benchmark, sweep_config.trace_length,
                         seed=sweep_config.seed,
                         scenario_profiles=sweep_config.scenario_profiles)
    return simulate(trace, sweep_config.config_for(point))


def _attach_scenario_profiles(sweep_config: SweepConfig) -> SweepConfig:
    """Attach the registry profile of every scenario named in the sweep.

    Run before sharding so worker processes (whose registry only holds
    the built-ins) and the cache key derivation both see the exact
    profile content being swept.  Explicitly supplied profiles win over
    registry entries of the same name.
    """
    supplied = {profile.name for profile in sweep_config.scenario_profiles}
    from_registry = tuple(SCENARIOS[name] for name in sweep_config.benchmarks
                          if name in SCENARIOS and name not in supplied)
    if not from_registry:
        return sweep_config
    return replace(sweep_config,
                   scenario_profiles=sweep_config.scenario_profiles + from_registry)


class SweepResult:
    """Results of a sweep, indexed by (benchmark, policy, register size).

    ``simulated`` / ``cached`` report how many points the producing
    ``run_sweep`` call actually simulated versus served from the on-disk
    cache (both zero for results built directly from a dict).

    ``export_cache_hits`` / ``export_cache_misses`` count the compiled
    backend's export-artefact cache traffic (trace columns built once per
    trace and shared read-only across configurations; see
    :mod:`repro.engine.accel.artefacts`), summed over every process that
    simulated points for this result.  ``compiled_fallback_reason`` is
    set — once, however many workers observed it — when the sweep
    requested the compiled backend but ran on the Python engine.

    ``cache_degradation_reason`` is the result-cache analogue: set when
    the sweep's cache backend ran degraded (e.g. a tiered backend whose
    remote store was unreachable continued local-only — see
    :mod:`repro.analysis.backends`).  The sweep itself still completes
    with correct results; the reason records that cross-machine sharing
    did not happen.
    """

    def __init__(self, sweep_config: SweepConfig,
                 results: Dict[SweepPoint, SimStats],
                 simulated: int = 0, cached: int = 0,
                 export_cache_hits: int = 0, export_cache_misses: int = 0,
                 compiled_fallback_reason: Optional[str] = None,
                 cache_degradation_reason: Optional[str] = None) -> None:
        self.config = sweep_config
        self._results = dict(results)
        self.simulated = simulated
        self.cached = cached
        self.export_cache_hits = export_cache_hits
        self.export_cache_misses = export_cache_misses
        self.compiled_fallback_reason = compiled_fallback_reason
        self.cache_degradation_reason = cache_degradation_reason

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, point) -> bool:
        """Probe for a point: a :class:`SweepPoint` or a
        ``(benchmark, policy, num_registers)`` tuple."""
        if not isinstance(point, SweepPoint):
            try:
                point = SweepPoint(*point)
            except TypeError:
                return False
        return point in self._results

    def points(self) -> List[SweepPoint]:
        """All points present in the result."""
        return list(self._results)

    def stats(self, benchmark: str, policy: str, num_registers: int) -> SimStats:
        """Full statistics of one point.

        Raises a :class:`KeyError` naming the missing point and the
        nearest available coordinates, instead of a bare key repr.
        """
        point = SweepPoint(benchmark, policy, num_registers)
        try:
            return self._results[point]
        except KeyError:
            raise KeyError(self._describe_missing(point)) from None

    def _describe_missing(self, point: SweepPoint) -> str:
        benchmarks = sorted({p.benchmark for p in self._results})
        policies = sorted({p.policy for p in self._results})
        sizes = sorted({p.num_registers for p in self._results
                        if p.benchmark == point.benchmark
                        and p.policy == point.policy}
                       or {p.num_registers for p in self._results})
        nearest = sorted(sizes, key=lambda s: abs(s - point.num_registers))[:5]
        return (f"sweep has no point {point} — available benchmarks: "
                f"{benchmarks or '[]'}; policies: {policies or '[]'}; "
                f"nearest register sizes: {sorted(nearest) or '[]'}")

    def ipc(self, benchmark: str, policy: str, num_registers: int) -> float:
        """IPC of one point."""
        return self.stats(benchmark, policy, num_registers).ipc

    # ------------------------------------------------------------------
    def harmonic_mean_ipc(self, benchmarks: Sequence[str], policy: str,
                          num_registers: int) -> float:
        """Harmonic-mean IPC over ``benchmarks`` (the paper's Hm bars)."""
        return harmonic_mean(self.ipc(benchmark, policy, num_registers)
                             for benchmark in benchmarks)

    def ipc_curve(self, benchmarks: Sequence[str], policy: str,
                  ) -> List[Tuple[int, float]]:
        """Harmonic-mean IPC as a function of register-file size (Figure 11)."""
        return [(size, self.harmonic_mean_ipc(benchmarks, policy, size))
                for size in self.config.register_sizes]

    def iso_ipc_size(self, benchmarks: Sequence[str], policy: str,
                     target_ipc: float) -> Optional[float]:
        """Smallest register count at which ``policy`` reaches ``target_ipc``."""
        curve = self.ipc_curve(benchmarks, policy)
        sizes = [size for size, _ in curve]
        ipcs = [ipc for _, ipc in curve]
        return iso_ipc_register_requirement(sizes, ipcs, target_ipc)

    # ------------------------------------------------------------------
    def merge(self, other: "SweepResult") -> "SweepResult":
        """Combine two sweeps (``other`` wins on overlapping points)."""
        merged = dict(self._results)
        merged.update(other._results)
        sizes = tuple(sorted(set(self.config.register_sizes)
                             | set(other.config.register_sizes)))
        benchmarks = tuple(dict.fromkeys(self.config.benchmarks
                                         + other.config.benchmarks))
        policies = tuple(dict.fromkeys(self.config.policies + other.config.policies))
        profiles = {profile.name: profile
                    for profile in (self.config.scenario_profiles
                                    + other.config.scenario_profiles)}
        config = replace(self.config, register_sizes=sizes, benchmarks=benchmarks,
                         policies=policies,
                         scenario_profiles=tuple(profiles.values()))
        return SweepResult(
            config, merged,
            simulated=self.simulated + other.simulated,
            cached=self.cached + other.cached,
            export_cache_hits=self.export_cache_hits + other.export_cache_hits,
            export_cache_misses=(self.export_cache_misses
                                 + other.export_cache_misses),
            compiled_fallback_reason=(self.compiled_fallback_reason
                                      or other.compiled_fallback_reason),
            cache_degradation_reason=(self.cache_degradation_reason
                                      or other.cache_degradation_reason))


def _empty_point_telemetry() -> Dict:
    return {"export_cache_hits": 0, "export_cache_misses": 0,
            "fallback_chunks": 0, "fallback_reason": None}


def _warn_fallback_summary(telemetry: Dict) -> None:
    """One summary warning for the whole sweep, however many workers fell
    back — each process's own warning was suppressed during execution."""
    reason = telemetry.get("fallback_reason")
    if reason is None:
        return
    import logging

    # ``reason`` is the full per-process warning text (it already ends in
    # "using the Python engine"), logged here exactly once for the sweep.
    logging.getLogger("repro.engine.accel").warning("%s", reason)


def run_sweep(sweep_config: SweepConfig, parallel: bool = True,
              max_workers: Optional[int] = None,
              cache: Union[None, bool, str, Path, SweepCache] = None,
              chunk_size: Optional[int] = None) -> SweepResult:
    """Run every point of ``sweep_config`` and collect the results.

    With ``parallel=True`` the points are sharded in chunks over a process
    pool (one Python process per core by default); otherwise they run
    serially in this process.

    ``cache`` enables the persistent result cache: ``True`` uses the
    default directory (``$REPRO_SWEEP_CACHE`` or ``~/.cache/repro/sweeps``),
    a path roots the cache there, and a :class:`SweepCache` instance is
    used as-is.  Cached points are not simulated at all — re-running an
    already-computed sweep performs zero simulations — and freshly
    simulated points are written back for the next run.
    """
    sweep_config = _attach_scenario_profiles(sweep_config)
    store = resolve_cache(cache)
    points = sweep_config.points()

    results: Dict[SweepPoint, SimStats] = {}
    missing: List[SweepPoint] = []
    if store is not None:
        for point in points:
            stats = store.get(sweep_config, point)
            if stats is None:
                missing.append(point)
            else:
                results[point] = stats
    else:
        missing = points

    telemetry = _empty_point_telemetry()
    if missing:
        # Persist each result as soon as it lands (not after the whole
        # sweep): an interrupted or crashed run keeps every completed
        # point, so the re-run only simulates what is genuinely missing.
        def record(point: SweepPoint, stats: SimStats) -> None:
            results[point] = stats
            if store is not None:
                store.put(sweep_config, point, stats)

        if parallel and len(missing) > 1:
            from repro.analysis.parallel import ParallelSweepRunner

            runner = ParallelSweepRunner(max_workers=max_workers)
            runner.run(sweep_config, missing, chunk_size=chunk_size,
                       on_result=record)
            telemetry = dict(runner.telemetry)
        else:
            from repro.engine import accel
            from repro.engine.accel.artefacts import EXPORT_CACHE

            hits_before, misses_before = EXPORT_CACHE.counters()
            with accel.suppressed_backend_warnings():
                for point in missing:
                    record(point, run_simulation_point(sweep_config, point))
            hits_after, misses_after = EXPORT_CACHE.counters()
            telemetry["export_cache_hits"] = hits_after - hits_before
            telemetry["export_cache_misses"] = misses_after - misses_before
            reason = accel.backend_fallback_reason()
            if reason is not None:
                telemetry["fallback_chunks"] = 1
                telemetry["fallback_reason"] = reason
        _warn_fallback_summary(telemetry)

    return SweepResult(
        sweep_config, results,
        simulated=len(missing), cached=len(points) - len(missing),
        export_cache_hits=telemetry["export_cache_hits"],
        export_cache_misses=telemetry["export_cache_misses"],
        compiled_fallback_reason=telemetry["fallback_reason"],
        cache_degradation_reason=(store.degradation_reason()
                                  if store is not None else None))
