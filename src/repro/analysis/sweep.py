"""Simulation sweep driver (the engine behind Figures 10/11 and Table 4).

A *sweep* is the cross product of benchmarks × release policies ×
register-file sizes, each point being one cycle-level simulation.  The
driver runs the points either serially or through the multiprocessing
runner of :mod:`repro.analysis.parallel` (each point is independent — the
"parallelise the outer loop" pattern of the session's HPC guides) and
collects the results into a :class:`SweepResult` with the accessors the
experiment modules need.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.metrics import harmonic_mean, iso_ipc_register_requirement
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import simulate
from repro.pipeline.stats import SimStats
from repro.trace.workloads import get_workload


@dataclass(frozen=True)
class SweepPoint:
    """One simulation point of a sweep."""

    benchmark: str
    policy: str
    num_registers: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.benchmark}/{self.policy}/P{self.num_registers}"


@dataclass(frozen=True)
class SweepConfig:
    """Parameters shared by every point of a sweep.

    ``num_registers`` of a point is applied to *both* the integer and the
    FP file, exactly as the paper's "48int + 48FP" configurations.
    """

    benchmarks: Tuple[str, ...]
    policies: Tuple[str, ...] = ("conv", "basic", "extended")
    register_sizes: Tuple[int, ...] = (48,)
    trace_length: int = 20_000
    seed: int = 0
    base_config: ProcessorConfig = field(default_factory=ProcessorConfig)

    def points(self) -> List[SweepPoint]:
        """Enumerate every simulation point of the sweep."""
        return [SweepPoint(benchmark, policy, size)
                for benchmark in self.benchmarks
                for policy in self.policies
                for size in self.register_sizes]

    def config_for(self, point: SweepPoint) -> ProcessorConfig:
        """Processor configuration of one sweep point."""
        return replace(self.base_config,
                       release_policy=point.policy,
                       num_physical_int=point.num_registers,
                       num_physical_fp=point.num_registers)


def run_simulation_point(sweep_config: SweepConfig, point: SweepPoint) -> SimStats:
    """Run the single simulation of ``point`` (used by both serial and
    parallel execution paths; must stay a module-level function so the
    multiprocessing runner can pickle it)."""
    trace = get_workload(point.benchmark, sweep_config.trace_length,
                         seed=sweep_config.seed)
    return simulate(trace, sweep_config.config_for(point))


class SweepResult:
    """Results of a sweep, indexed by (benchmark, policy, register size)."""

    def __init__(self, sweep_config: SweepConfig,
                 results: Dict[SweepPoint, SimStats]) -> None:
        self.config = sweep_config
        self._results = dict(results)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._results)

    def points(self) -> List[SweepPoint]:
        """All points present in the result."""
        return list(self._results)

    def stats(self, benchmark: str, policy: str, num_registers: int) -> SimStats:
        """Full statistics of one point."""
        return self._results[SweepPoint(benchmark, policy, num_registers)]

    def ipc(self, benchmark: str, policy: str, num_registers: int) -> float:
        """IPC of one point."""
        return self.stats(benchmark, policy, num_registers).ipc

    # ------------------------------------------------------------------
    def harmonic_mean_ipc(self, benchmarks: Sequence[str], policy: str,
                          num_registers: int) -> float:
        """Harmonic-mean IPC over ``benchmarks`` (the paper's Hm bars)."""
        return harmonic_mean(self.ipc(benchmark, policy, num_registers)
                             for benchmark in benchmarks)

    def ipc_curve(self, benchmarks: Sequence[str], policy: str,
                  ) -> List[Tuple[int, float]]:
        """Harmonic-mean IPC as a function of register-file size (Figure 11)."""
        return [(size, self.harmonic_mean_ipc(benchmarks, policy, size))
                for size in self.config.register_sizes]

    def iso_ipc_size(self, benchmarks: Sequence[str], policy: str,
                     target_ipc: float) -> Optional[float]:
        """Smallest register count at which ``policy`` reaches ``target_ipc``."""
        curve = self.ipc_curve(benchmarks, policy)
        sizes = [size for size, _ in curve]
        ipcs = [ipc for _, ipc in curve]
        return iso_ipc_register_requirement(sizes, ipcs, target_ipc)

    # ------------------------------------------------------------------
    def merge(self, other: "SweepResult") -> "SweepResult":
        """Combine two sweeps run over disjoint point sets."""
        merged = dict(self._results)
        merged.update(other._results)
        sizes = tuple(sorted(set(self.config.register_sizes)
                             | set(other.config.register_sizes)))
        benchmarks = tuple(dict.fromkeys(self.config.benchmarks
                                         + other.config.benchmarks))
        policies = tuple(dict.fromkeys(self.config.policies + other.config.policies))
        config = replace(self.config, register_sizes=sizes, benchmarks=benchmarks,
                         policies=policies)
        return SweepResult(config, merged)


def run_sweep(sweep_config: SweepConfig, parallel: bool = True,
              max_workers: Optional[int] = None) -> SweepResult:
    """Run every point of ``sweep_config`` and collect the results.

    With ``parallel=True`` the points are distributed over a process pool
    (one Python process per core by default); otherwise they run serially
    in this process.
    """
    points = sweep_config.points()
    if parallel and len(points) > 1:
        from repro.analysis.parallel import ParallelSweepRunner

        runner = ParallelSweepRunner(max_workers=max_workers)
        results = runner.run(sweep_config, points)
    else:
        results = {point: run_simulation_point(sweep_config, point)
                   for point in points}
    return SweepResult(sweep_config, results)
