"""Pluggable storage backends for the sweep result cache.

The on-disk sweep cache (:mod:`repro.analysis.cache`) keys every entry by
an exact content-addressed digest — workload content, configuration hash,
trace length, seed, simulator code digest, schema version — so sharing
results *across machines* is purely a transport problem: any store that
can hold ``key -> bytes`` can serve them.  This module provides that
transport seam:

* :class:`LocalDirBackend` — today's layout (``<dir>/<key[:2]>/<key>.pkl``,
  atomic writes), byte-identical paths and bytes to the pre-backend cache;
* :class:`HTTPCacheBackend` — a remote blob store speaking the tiny
  ``GET/PUT /v1/cache/<key>`` protocol served by ``repro-serve``, with
  per-request timeouts, bounded retries with exponential backoff, and
  *graceful degradation*: after an unreachable remote exhausts its
  retries the backend goes local-only (every remote call short-circuits)
  until a recovery interval elapses, and the reason is surfaced through
  :meth:`CacheBackend.degradation_reason` all the way to
  ``SweepResult.cache_degradation_reason`` — mirroring the compiled
  backend's fallback contract;
* :class:`TieredBackend` — composes a local backend under a remote one:
  reads hit local first, remote hits are written through to local, writes
  go to both (remote best-effort).  Remote traffic is framed in a small
  integrity envelope binding the payload to its key and content digest,
  so a corrupt or misrouted remote blob is *never* served.

Backend selection (``resolve_backend``) accepts a spec string from
``--cache-backend`` / ``$REPRO_CACHE_BACKEND``:

* ``local`` (or empty) — the plain local directory store;
* ``http://host:port`` / ``https://…`` — tiered: local write-through
  under that remote;
* ``remote:http://host:port`` — the remote alone (no local copy; mostly
  for tests and diagnostics).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Callable, Optional, Union

__all__ = [
    "CacheBackend", "LocalDirBackend", "HTTPCacheBackend", "TieredBackend",
    "resolve_backend", "wrap_envelope", "unwrap_envelope",
    "CACHE_BACKEND_ENV",
]

#: Environment variable holding the default backend spec.
CACHE_BACKEND_ENV = "REPRO_CACHE_BACKEND"

#: Magic prefix of the remote integrity envelope (version 1).
_ENVELOPE_MAGIC = b"RSB1"
_DIGEST_BYTES = 32
_KEY_BYTES = 64


def wrap_envelope(key: str, body: bytes) -> bytes:
    """Frame ``body`` for the wire: magic, content digest, owning key.

    The envelope is what tiered backends ship to a remote store; it binds
    the payload to the exact cache key it was stored under *and* to its
    own SHA-256, so a remote that corrupts, truncates or misroutes a blob
    can never have it served as a live result.
    """
    key_bytes = key.encode("ascii")
    if len(key_bytes) != _KEY_BYTES:
        raise ValueError(f"cache keys are {_KEY_BYTES}-char hex digests, "
                         f"got {key!r}")
    return (_ENVELOPE_MAGIC + hashlib.sha256(body).digest()
            + key_bytes + body)


def unwrap_envelope(key: str, blob: Optional[bytes]) -> Optional[bytes]:
    """Verify and strip the envelope; None for anything that fails.

    Rejects short/foreign blobs, a stored key that differs from the
    requested one, and any body whose digest does not match — the three
    ways a remote store can lie.
    """
    header = len(_ENVELOPE_MAGIC) + _DIGEST_BYTES + _KEY_BYTES
    if blob is None or len(blob) < header:
        return None
    if not blob.startswith(_ENVELOPE_MAGIC):
        return None
    digest = blob[len(_ENVELOPE_MAGIC):len(_ENVELOPE_MAGIC) + _DIGEST_BYTES]
    stored_key = blob[len(_ENVELOPE_MAGIC) + _DIGEST_BYTES:header]
    body = blob[header:]
    try:
        if stored_key.decode("ascii") != key:
            return None
    except UnicodeDecodeError:
        return None
    if hashlib.sha256(body).digest() != digest:
        return None
    return body


class CacheBackend:
    """Key/value transport contract shared by every backend.

    Payloads are opaque bytes (the cache layer's pickled dict).  The
    contract is deliberately forgiving: a failed read is ``None`` and a
    failed write is ``False`` — backends absorb their own faults and
    report persistent trouble through :meth:`degradation_reason`, so a
    sweep whose simulation work is already done never crashes on storage.
    """

    #: Short human-readable backend name (metrics, reprs, docs).
    name = "abstract"

    def get_blob(self, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def put_blob(self, key: str, data: bytes) -> bool:
        raise NotImplementedError

    def degradation_reason(self) -> Optional[str]:
        """Why the backend is running in a degraded mode, or None."""
        return

    @property
    def local_dir(self) -> Optional[Path]:
        """Directory of the local layer, when the backend has one.

        The maintenance surface (stats/prune/clear) operates on this
        directory; purely remote backends return None and the cache layer
        refuses maintenance with a clear error.
        """
        return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class LocalDirBackend(CacheBackend):
    """The on-disk store: ``<dir>/<key[:2]>/<key>.pkl``, atomic writes.

    Byte-identical paths and bytes to the pre-backend ``SweepCache`` —
    existing caches keep working and tools that reach for
    ``SweepCache.path_for`` see the same files.
    """

    name = "local"

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)

    @property
    def local_dir(self) -> Path:
        return self.cache_dir

    def path_for_key(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.pkl"

    def get_blob(self, key: str) -> Optional[bytes]:
        try:
            return self.path_for_key(key).read_bytes()
        except OSError:
            return None

    def put_blob(self, key: str, data: bytes) -> bool:
        tmp_name = None
        try:
            path = self.path_for_key(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except OSError:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalDirBackend({str(self.cache_dir)!r})"


class HTTPCacheBackend(CacheBackend):
    """Remote blob store over the ``repro-serve`` cache protocol.

    ``GET {base}/v1/cache/<key>`` returns the blob (404 on a miss);
    ``PUT`` stores it.  Every request carries ``timeout``; transport
    errors are retried up to ``retries`` extra times with exponential
    backoff (``backoff * 2**attempt`` seconds).  When a request still
    fails after its retries the backend *degrades*: the reason is
    recorded, and every call short-circuits (local-only operation for a
    tiered composition) until ``recovery_interval`` seconds pass, at
    which point the next call probes the remote again.  A 404 is a miss,
    not a fault.

    ``_sleep`` / ``_clock`` are injection points for tests — the contract
    suite drives the retry/degradation machinery without real waiting.
    """

    name = "http"

    def __init__(self, base_url: str, timeout: float = 3.0,
                 retries: int = 2, backoff: float = 0.2,
                 recovery_interval: float = 30.0,
                 _sleep: Callable[[float], None] = time.sleep,
                 _clock: Callable[[], float] = time.monotonic) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.recovery_interval = recovery_interval
        self._sleep = _sleep
        self._clock = _clock
        self._degraded_reason: Optional[str] = None
        self._degraded_at: Optional[float] = None
        # telemetry (surfaced through /metrics and tests)
        self.remote_hits = 0
        self.remote_misses = 0
        self.remote_errors = 0

    # ------------------------------------------------------------------
    def degradation_reason(self) -> Optional[str]:
        return self._degraded_reason

    def _short_circuit(self) -> bool:
        """True while degraded and the recovery interval has not passed."""
        if self._degraded_at is None:
            return False
        if self._clock() - self._degraded_at >= self.recovery_interval:
            # Probe again; keep the reason until a request succeeds so a
            # still-down remote re-degrades without losing the history.
            self._degraded_at = None
            return False
        return True

    def _degrade(self, reason: str) -> None:
        self._degraded_reason = (
            f"remote cache {self.base_url} unreachable ({reason}); "
            f"continuing local-only")
        self._degraded_at = self._clock()

    def _recover(self) -> None:
        self._degraded_reason = None
        self._degraded_at = None

    def _url(self, key: str) -> str:
        return f"{self.base_url}/v1/cache/{key}"

    def _request(self, key: str, data: Optional[bytes] = None):
        """One GET (data None) or PUT with bounded retries.

        Returns ``(outcome, payload)`` where outcome is ``"ok"``,
        ``"miss"`` or ``"error"``.
        """
        if self._short_circuit():
            return "error", None
        last_error = "unreachable"
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                self._url(key), data=data,
                method="PUT" if data is not None else "GET",
                headers={"Content-Type": "application/octet-stream"}
                if data is not None else {})
            try:
                with urllib.request.urlopen(request,
                                            timeout=self.timeout) as response:
                    body = response.read()
                self._recover()
                return "ok", body
            except urllib.error.HTTPError as exc:
                exc.close()
                if exc.code == 404:
                    self._recover()
                    return "miss", None
                last_error = f"HTTP {exc.code}"
            except (urllib.error.URLError, OSError, TimeoutError) as exc:
                reason = getattr(exc, "reason", exc)
                last_error = str(reason) or type(exc).__name__
            self.remote_errors += 1
            if attempt < self.retries:
                self._sleep(self.backoff * (2 ** attempt))
        self._degrade(last_error)
        return "error", None

    # ------------------------------------------------------------------
    def get_blob(self, key: str) -> Optional[bytes]:
        outcome, body = self._request(key)
        if outcome == "ok":
            self.remote_hits += 1
            return body
        if outcome == "miss":
            self.remote_misses += 1
        return None

    def put_blob(self, key: str, data: bytes) -> bool:
        outcome, _ = self._request(key, data=data)
        return outcome == "ok"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "degraded" if self._degraded_reason else "healthy"
        return f"HTTPCacheBackend({self.base_url!r}, {state})"


class TieredBackend(CacheBackend):
    """Local write-through under a remote store.

    * ``get`` — local first; on a local miss the remote is consulted, the
      blob is integrity-checked against its envelope (key *and* content
      digest must verify — a corrupt or misrouted remote entry is treated
      as a miss, never served), and a verified hit is written through to
      the local layer so the next read is local.
    * ``put`` — local always; remote best-effort (a degraded remote never
      fails the write, the local copy is the source of truth).
    """

    name = "tiered"

    def __init__(self, local: CacheBackend, remote: CacheBackend) -> None:
        self.local = local
        self.remote = remote
        # telemetry: where reads were served from
        self.local_serves = 0
        self.remote_serves = 0
        self.remote_rejects = 0

    @property
    def local_dir(self) -> Optional[Path]:
        return self.local.local_dir

    def degradation_reason(self) -> Optional[str]:
        return self.remote.degradation_reason() \
            or self.local.degradation_reason()

    def get_blob(self, key: str) -> Optional[bytes]:
        body = self.local.get_blob(key)
        if body is not None:
            self.local_serves += 1
            return body
        blob = self.remote.get_blob(key)
        if blob is None:
            return None
        body = unwrap_envelope(key, blob)
        if body is None:
            self.remote_rejects += 1
            return None
        self.remote_serves += 1
        self.local.put_blob(key, body)      # write-through (best effort)
        return body

    def put_blob(self, key: str, data: bytes) -> bool:
        ok = self.local.put_blob(key, data)
        self.remote.put_blob(key, wrap_envelope(key, data))
        return ok

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TieredBackend({self.local!r}, {self.remote!r})"


def resolve_backend(spec: Optional[str],
                    cache_dir: Union[None, str, Path] = None,
                    **http_options) -> CacheBackend:
    """Build a backend from a ``--cache-backend`` spec string.

    ``None``/empty falls back to ``$REPRO_CACHE_BACKEND``, then to the
    plain local store.  ``cache_dir`` roots the local layer (default:
    the sweep cache's default directory).  ``http_options`` are forwarded
    to :class:`HTTPCacheBackend` (timeout/retries/backoff).
    """
    from repro.analysis.cache import default_cache_dir

    if not spec:
        spec = os.environ.get(CACHE_BACKEND_ENV, "") or "local"
    spec = spec.strip()
    local_root = Path(cache_dir) if cache_dir else default_cache_dir()
    if spec == "local":
        return LocalDirBackend(local_root)
    if spec.startswith("remote:"):
        url = spec[len("remote:"):]
        if not url.startswith(("http://", "https://")):
            raise ValueError(f"remote cache backend needs an http(s) URL, "
                             f"got {url!r}")
        return HTTPCacheBackend(url, **http_options)
    if spec.startswith(("http://", "https://")):
        return TieredBackend(LocalDirBackend(local_root),
                             HTTPCacheBackend(spec, **http_options))
    raise ValueError(
        f"unknown cache backend spec {spec!r}; expected 'local', an "
        f"http(s):// URL (tiered with local write-through) or "
        f"'remote:<url>' (remote only)")
