"""Persistent on-disk cache of sweep simulation results.

Every sweep point is one deterministic cycle-level simulation, fully
determined by ``(workload, processor configuration, trace length, seed)``.
The cache keys each point by a SHA-256 digest of exactly those inputs and
stores the pickled :class:`~repro.pipeline.stats.SimStats`, so regenerating
a figure after a partial sweep — or re-running a sweep with a finer
register-size grid — only simulates the missing points.

Layout: ``<cache_dir>/<key[:2]>/<key>.pkl`` (the two-character fan-out
keeps directories small for big sweeps).  Writes are atomic
(tmp file + ``os.replace``) so concurrent sweep workers and parallel
processes never observe torn entries; readers treat any unreadable entry
as a miss.

Keys also fold in a digest of the ``repro`` package's own source code
(:func:`code_digest`), so any change to the simulator invalidates the
cache automatically — cached results can never silently survive a
behaviour change.  The default cache directory is ``$REPRO_SWEEP_CACHE``
when set, else ``~/.cache/repro/sweeps``.  Bump
:data:`CACHE_SCHEMA_VERSION` whenever the pickled payload or the key
inputs change meaning.

Storage is pluggable (:mod:`repro.analysis.backends`): the default
:class:`~repro.analysis.backends.LocalDirBackend` keeps today's on-disk
layout byte-identically, while an HTTP remote (optionally tiered with
local write-through) shares the same content-addressed entries across
machines.  The key derivation and payload format in this module are
backend-independent.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import os
import pickle
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple, Union

from repro.analysis.backends import CacheBackend, LocalDirBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.sweep import SweepConfig, SweepPoint
    from repro.pipeline.config import ProcessorConfig
    from repro.pipeline.stats import SimStats

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE"

#: Bump when the key derivation or the pickled payload changes shape.
#: v2: payloads additionally record the producing code digest and a
#: creation timestamp, so ``repro-experiments cache`` can report and prune
#: entries by age and by stale source code.
#: v3: keys additionally fold in the *workload content digest*
#: (``repro.trace.workloads.workload_digest``), so a user-defined scenario
#: re-registered with different content under the same name can never be
#: served a stale entry.
#: v4: keys additionally fold in the *requested engine backend*
#: (``repro.engine.accel.requested_backend``) and :func:`code_digest`
#: covers the C core sources, so results produced by the compiled and
#: Python engines — equivalent by contract, but separately validated —
#: occupy distinct entries and a core change invalidates compiled results.
#: v5: payloads additionally record their own point key, verified on
#: read — a remote-synced entry that lands under the wrong key (buggy
#: proxy, hand-copied store) is a miss, never a silently wrong result.
CACHE_SCHEMA_VERSION = 5


def default_cache_dir() -> Path:
    """Resolve the cache directory (env override, else ``~/.cache``)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweeps"


def _canonical(value) -> object:
    """Recursively convert ``value`` into a deterministic representation.

    Dataclasses become sorted ``(field, value)`` tuples, mappings are
    sorted by stringified key, enums collapse to their names — so the
    digest is stable across processes and insertion orders.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return ("dataclass", type(value).__name__,
                tuple((f.name, _canonical(getattr(value, f.name)))
                      for f in sorted(dataclasses.fields(value),
                                      key=lambda f: f.name)))
    if isinstance(value, dict):
        return ("dict", tuple(sorted(((str(k), _canonical(v))
                                      for k, v in value.items()))))
    if hasattr(value, "items"):  # non-dict Mappings (FUConfig counts)
        return ("map", tuple(sorted(((str(k), _canonical(v))
                                     for k, v in value.items()))))
    if isinstance(value, (frozenset, set)):
        return ("set", tuple(sorted(str(_canonical(v)) for v in value)))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_canonical(v) for v in value))
    if hasattr(value, "name") and hasattr(value, "value"):  # enums
        return ("enum", type(value).__name__, value.name)
    return value


def config_digest(config: "ProcessorConfig") -> str:
    """Stable hex digest of a processor configuration."""
    payload = repr(_canonical(config)).encode()
    return hashlib.sha256(payload).hexdigest()


@functools.lru_cache(maxsize=1)
def code_digest() -> str:
    """Digest of the ``repro`` package's source files.

    Simulation results are a pure function of (inputs, simulator code);
    hashing the code makes every source change invalidate the cache, so a
    behaviour fix can never be masked by stale entries.  Computed once per
    process (~100 small files).
    """
    import repro

    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    sources = [path for pattern in ("*.py", "*.c")
               for path in package_root.rglob(pattern)]
    for path in sorted(sources):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def point_key(sweep_config: "SweepConfig", point: "SweepPoint") -> str:
    """Cache key of one sweep point:
    (workload name + content, config hash, trace length, seed, simulator
    code, engine backend).  The workload *content* digest means a
    registered scenario and its later re-registration with different
    parameters occupy different keys even though they share a name.  The
    *requested* backend (not the resolved one) is folded in so a
    toolchain-driven fallback still hits the entries it asked for, while
    compiled and Python results never share an entry."""
    from repro.engine.accel import requested_backend
    from repro.trace.workloads import workload_digest

    config = sweep_config.config_for(point)
    payload = repr((
        "repro-sweep-point", CACHE_SCHEMA_VERSION, code_digest(),
        point.benchmark,
        workload_digest(point.benchmark,
                        getattr(sweep_config, "scenario_profiles", ())),
        sweep_config.trace_length, sweep_config.seed,
        config_digest(config),
        requested_backend(config),
    )).encode()
    return hashlib.sha256(payload).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Aggregate report of one cache directory (``repro-experiments cache``)."""

    total_entries: int = 0
    total_bytes: int = 0
    unreadable_entries: int = 0
    unreadable_bytes: int = 0
    stale_code_entries: int = 0
    oldest: Optional[float] = None
    #: workload name -> (entry count, bytes on disk).
    workloads: Dict[str, Tuple[int, int]] = dataclasses.field(default_factory=dict)

    def format(self) -> str:
        """Human-readable report.

        Corrupt/foreign/outdated-schema entries are a *distinct* bucket
        with their own byte count: a remote-synced partial write (or any
        file the cache cannot serve again) shows up as dead weight, never
        blended into a workload's live-result totals.
        """
        live_bytes = self.total_bytes - self.unreadable_bytes
        lines = [f"entries: {self.total_entries} "
                 f"({self.total_bytes / 1024:.1f} KiB)"]
        if self.oldest is not None:
            age_days = (time.time() - self.oldest) / 86400.0
            lines.append(f"oldest entry: {age_days:.1f} days")
        lines.append(f"stale (old source code): {self.stale_code_entries}")
        if self.unreadable_entries:
            lines.append(
                f"unreadable (corrupt/foreign/outdated schema): "
                f"{self.unreadable_entries} entries  "
                f"{self.unreadable_bytes / 1024:.1f} KiB "
                f"(dead weight — excluded from the live "
                f"{live_bytes / 1024:.1f} KiB below)")
        if self.workloads:
            lines.append("per workload:")
            for workload in sorted(self.workloads):
                count, nbytes = self.workloads[workload]
                lines.append(f"  {workload:<12} {count:5d} entries  "
                             f"{nbytes / 1024:8.1f} KiB")
        return "\n".join(lines)


@dataclasses.dataclass
class SizePruneReport:
    """Result of a :meth:`SweepCache.prune_to_size` eviction pass."""

    removed: int = 0
    bytes_freed: int = 0
    bytes_remaining: int = 0
    #: workload name -> entries evicted (``<unreadable>`` for entries
    #: that could not be attributed).
    per_workload: Dict[str, int] = dataclasses.field(default_factory=dict)

    def format(self) -> str:
        """Human-readable eviction summary (the CLI's output)."""
        lines = [f"evicted {self.removed} entries "
                 f"({self.bytes_freed / 1024:.1f} KiB freed, "
                 f"{self.bytes_remaining / 1024:.1f} KiB remain)"]
        for workload in sorted(self.per_workload):
            lines.append(f"  {workload:<16} {self.per_workload[workload]:5d} evicted")
        return "\n".join(lines)


class SweepCache:
    """Store of simulated sweep points over a pluggable backend.

    The default backend is the directory-backed
    :class:`~repro.analysis.backends.LocalDirBackend` (today's layout);
    pass ``backend=`` to share entries through a remote store — see
    :mod:`repro.analysis.backends`.  Key derivation, payload format and
    the read-side validation are identical for every backend.
    """

    def __init__(self, cache_dir: Union[None, str, Path] = None,
                 backend: Optional[CacheBackend] = None) -> None:
        if backend is None:
            backend = LocalDirBackend(
                Path(cache_dir) if cache_dir else default_cache_dir())
        self.backend = backend
        #: Directory of the local layer (None for purely remote backends;
        #: the maintenance surface below requires one).
        self.cache_dir = backend.local_dir
        # run-time counters (telemetry for run_sweep reporting / tests)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.store_errors = 0

    # ------------------------------------------------------------------
    def degradation_reason(self) -> Optional[str]:
        """Why the backend is degraded (e.g. remote unreachable), or None.

        Surfaced by ``run_sweep`` as ``SweepResult.cache_degradation_reason``
        — the cache equivalent of the compiled engine's fallback reason.
        """
        return self.backend.degradation_reason()

    def path_for(self, sweep_config: "SweepConfig", point: "SweepPoint") -> Path:
        """Filesystem path of one point's entry (local layer)."""
        key = point_key(sweep_config, point)
        return self._require_local_dir() / key[:2] / f"{key}.pkl"

    def _require_local_dir(self) -> Path:
        if self.cache_dir is None:
            raise ValueError(
                f"backend {self.backend.name!r} has no local directory; "
                f"path-based maintenance needs a local or tiered backend")
        return self.cache_dir

    @staticmethod
    def _decode(blob: Optional[bytes], key: str) -> Optional["SimStats"]:
        """Validate one payload blob; None for anything unservable.

        Rejects foreign pickles, outdated schemas and — for v5 payloads —
        entries whose recorded point key differs from the requested one
        (a misfiled remote sync must be a miss, not a wrong result).
        Blobs framed in the remote-wire integrity envelope (a purely
        remote backend hands them over as received) are verified and
        unwrapped first.
        """
        if blob is None:
            return None
        if blob.startswith(b"RSB1"):
            from repro.analysis.backends import unwrap_envelope

            blob = unwrap_envelope(key, blob)
            if blob is None:
                return None
        try:
            payload = pickle.loads(blob)
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                raise EOFError("schema mismatch")
            if payload.get("key", key) != key:
                raise EOFError("key mismatch")
            return payload["stats"]
        except (pickle.PickleError, EOFError, AttributeError,
                KeyError, TypeError, ImportError):
            return None

    def get(self, sweep_config: "SweepConfig",
            point: "SweepPoint") -> Optional["SimStats"]:
        """Cached statistics of ``point``, or None on a miss."""
        key = point_key(sweep_config, point)
        stats = self._decode(self.backend.get_blob(key), key)
        if stats is None:
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def put(self, sweep_config: "SweepConfig", point: "SweepPoint",
            stats: "SimStats") -> None:
        """Store the statistics of one simulated point (atomic write).

        Storage failures (full disk, read-only mount, unreachable remote)
        degrade to an uncached run instead of crashing a sweep whose
        simulation work is already done; they are tallied in
        :attr:`store_errors`.
        """
        key = point_key(sweep_config, point)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "point": (point.benchmark, point.policy, point.num_registers),
            "trace_length": sweep_config.trace_length,
            "seed": sweep_config.seed,
            "code": code_digest(),
            "created": time.time(),
            "stats": stats,
        }
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        if self.backend.put_blob(key, blob):
            self.stores += 1
        else:
            self.store_errors += 1

    # ------------------------------------------------------------------
    # Maintenance (the ``repro-experiments cache`` subcommand).  Operates
    # on the *local* layer of the backend — the directory this process
    # owns; a shared remote store is maintained by its own server.
    # ------------------------------------------------------------------
    def iter_entries(self) -> Iterator[Tuple[Path, Optional[dict]]]:
        """Yield ``(path, payload)`` for every entry file on disk.

        ``payload`` is None for entries that cannot be read or that carry
        an outdated schema — those are unconditionally stale.
        """
        cache_dir = self._require_local_dir()
        if not cache_dir.exists():
            return
        for path in sorted(self.cache_dir.rglob("*.pkl")):
            payload: Optional[dict] = None
            try:
                with open(path, "rb") as handle:
                    loaded = pickle.load(handle)
                if isinstance(loaded, dict) and \
                        loaded.get("schema") == CACHE_SCHEMA_VERSION:
                    payload = loaded
            except (OSError, pickle.PickleError, EOFError, AttributeError,
                    KeyError, TypeError, ImportError):
                # ImportError: an old entry pickled a class the simulator
                # has since moved or renamed — unconditionally stale.
                payload = None
            yield path, payload

    def stats(self) -> "CacheStats":
        """Aggregate entry counts and sizes, grouped per workload."""
        result = CacheStats()
        for path, payload in self.iter_entries():
            try:
                size = path.stat().st_size
            except OSError:  # pragma: no cover - concurrent cleanup
                continue
            result.total_entries += 1
            result.total_bytes += size
            if payload is None:
                result.unreadable_entries += 1
                result.unreadable_bytes += size
                continue
            workload = payload["point"][0]
            count, nbytes = result.workloads.get(workload, (0, 0))
            result.workloads[workload] = (count + 1, nbytes + size)
            created = payload.get("created")
            if created is not None:
                if result.oldest is None or created < result.oldest:
                    result.oldest = created
            if payload.get("code") != code_digest():
                result.stale_code_entries += 1
        return result

    def prune(self, max_age_days: Optional[float] = None,
              stale_code: bool = False,
              now: Optional[float] = None) -> int:
        """Delete entries older than ``max_age_days`` and/or produced by a
        different version of the simulator source; returns the count removed.

        Unreadable and outdated-schema entries are removed by either
        criterion — they can never be served again.  At least one criterion
        must be given (an unconditional wipe is :meth:`clear`).
        """
        if max_age_days is None and not stale_code:
            raise ValueError("prune needs max_age_days and/or stale_code "
                             "(use clear() to wipe the cache)")
        now = time.time() if now is None else now
        removed = 0
        for path, payload in self.iter_entries():
            if payload is None:
                drop = True
            else:
                drop = False
                if max_age_days is not None:
                    created = payload.get("created", 0.0)
                    drop = now - created > max_age_days * 86400.0
                if not drop and stale_code:
                    drop = payload.get("code") != code_digest()
            if drop:
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
        return removed

    def prune_to_size(self, max_size_mb: float) -> "SizePruneReport":
        """Evict oldest entries first until the cache fits ``max_size_mb``.

        The auto-prune policy for long-lived developer caches: entries
        are ranked by creation time (unreadable/outdated-schema entries
        first — they can never be served again and carry no timestamp)
        and deleted oldest-first until the remaining entries total at
        most ``max_size_mb`` megabytes.  Returns a
        :class:`SizePruneReport` with the per-workload eviction counts.
        """
        if max_size_mb < 0:
            raise ValueError("max_size_mb must be non-negative")
        budget = int(max_size_mb * 1024 * 1024)
        entries = []
        total = 0
        for path, payload in self.iter_entries():
            try:
                size = path.stat().st_size
            except OSError:  # pragma: no cover - concurrent cleanup
                continue
            if payload is None:
                created, workload = float("-inf"), "<unreadable>"
            else:
                created = payload.get("created", 0.0)
                workload = payload["point"][0]
            entries.append((created, path, size, workload))
            total += size
        entries.sort(key=lambda entry: entry[0])
        report = SizePruneReport(bytes_remaining=total)
        for _created, path, size, workload in entries:
            if total <= budget:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                continue
            total -= size
            report.removed += 1
            report.bytes_freed += size
            report.bytes_remaining = total
            report.per_workload[workload] = \
                report.per_workload.get(workload, 0) + 1
        return report

    # ------------------------------------------------------------------
    def __contains__(self, item) -> bool:
        sweep_config, point = item
        if self.cache_dir is not None:
            return self.path_for(sweep_config, point).exists()
        return self.backend.get_blob(point_key(sweep_config, point)) is not None

    def clear(self) -> int:
        """Delete every entry below the cache directory; returns the count."""
        removed = 0
        cache_dir = self._require_local_dir()
        if not cache_dir.exists():
            return removed
        for path in cache_dir.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SweepCache({self.backend!r}, hits={self.hits}, "
                f"misses={self.misses}, stores={self.stores})")


def resolve_cache(cache: Union[None, bool, str, Path, SweepCache],
                  ) -> Optional[SweepCache]:
    """Normalise the ``cache`` argument accepted by ``run_sweep``.

    ``None`` / ``False`` → no caching; ``True`` → default directory;
    a path → local cache rooted there; a backend spec string
    (``"local"``, ``"http://…"``, ``"remote:http://…"`` — see
    :func:`repro.analysis.backends.resolve_backend`) → cache over that
    backend; a :class:`SweepCache` → itself.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return SweepCache()
    if isinstance(cache, SweepCache):
        return cache
    if isinstance(cache, str) and (cache == "local"
                                   or cache.startswith(("http://", "https://",
                                                        "remote:"))):
        from repro.analysis.backends import resolve_backend

        return SweepCache(backend=resolve_backend(cache))
    return SweepCache(cache)
