"""Persistent on-disk cache of sweep simulation results.

Every sweep point is one deterministic cycle-level simulation, fully
determined by ``(workload, processor configuration, trace length, seed)``.
The cache keys each point by a SHA-256 digest of exactly those inputs and
stores the pickled :class:`~repro.pipeline.stats.SimStats`, so regenerating
a figure after a partial sweep — or re-running a sweep with a finer
register-size grid — only simulates the missing points.

Layout: ``<cache_dir>/<key[:2]>/<key>.pkl`` (the two-character fan-out
keeps directories small for big sweeps).  Writes are atomic
(tmp file + ``os.replace``) so concurrent sweep workers and parallel
processes never observe torn entries; readers treat any unreadable entry
as a miss.

Keys also fold in a digest of the ``repro`` package's own source code
(:func:`code_digest`), so any change to the simulator invalidates the
cache automatically — cached results can never silently survive a
behaviour change.  The default cache directory is ``$REPRO_SWEEP_CACHE``
when set, else ``~/.cache/repro/sweeps``.  Bump
:data:`CACHE_SCHEMA_VERSION` whenever the pickled payload or the key
inputs change meaning.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.sweep import SweepConfig, SweepPoint
    from repro.pipeline.config import ProcessorConfig
    from repro.pipeline.stats import SimStats

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE"

#: Bump when the key derivation or the pickled payload changes shape.
#: v2: payloads additionally record the producing code digest and a
#: creation timestamp, so ``repro-experiments cache`` can report and prune
#: entries by age and by stale source code.
#: v3: keys additionally fold in the *workload content digest*
#: (``repro.trace.workloads.workload_digest``), so a user-defined scenario
#: re-registered with different content under the same name can never be
#: served a stale entry.
#: v4: keys additionally fold in the *requested engine backend*
#: (``repro.engine.accel.requested_backend``) and :func:`code_digest`
#: covers the C core sources, so results produced by the compiled and
#: Python engines — equivalent by contract, but separately validated —
#: occupy distinct entries and a core change invalidates compiled results.
CACHE_SCHEMA_VERSION = 4


def default_cache_dir() -> Path:
    """Resolve the cache directory (env override, else ``~/.cache``)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweeps"


def _canonical(value) -> object:
    """Recursively convert ``value`` into a deterministic representation.

    Dataclasses become sorted ``(field, value)`` tuples, mappings are
    sorted by stringified key, enums collapse to their names — so the
    digest is stable across processes and insertion orders.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return ("dataclass", type(value).__name__,
                tuple((f.name, _canonical(getattr(value, f.name)))
                      for f in sorted(dataclasses.fields(value),
                                      key=lambda f: f.name)))
    if isinstance(value, dict):
        return ("dict", tuple(sorted(((str(k), _canonical(v))
                                      for k, v in value.items()))))
    if hasattr(value, "items"):  # non-dict Mappings (FUConfig counts)
        return ("map", tuple(sorted(((str(k), _canonical(v))
                                     for k, v in value.items()))))
    if isinstance(value, (frozenset, set)):
        return ("set", tuple(sorted(str(_canonical(v)) for v in value)))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_canonical(v) for v in value))
    if hasattr(value, "name") and hasattr(value, "value"):  # enums
        return ("enum", type(value).__name__, value.name)
    return value


def config_digest(config: "ProcessorConfig") -> str:
    """Stable hex digest of a processor configuration."""
    payload = repr(_canonical(config)).encode()
    return hashlib.sha256(payload).hexdigest()


@functools.lru_cache(maxsize=1)
def code_digest() -> str:
    """Digest of the ``repro`` package's source files.

    Simulation results are a pure function of (inputs, simulator code);
    hashing the code makes every source change invalidate the cache, so a
    behaviour fix can never be masked by stale entries.  Computed once per
    process (~100 small files).
    """
    import repro

    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    sources = [path for pattern in ("*.py", "*.c")
               for path in package_root.rglob(pattern)]
    for path in sorted(sources):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def point_key(sweep_config: "SweepConfig", point: "SweepPoint") -> str:
    """Cache key of one sweep point:
    (workload name + content, config hash, trace length, seed, simulator
    code, engine backend).  The workload *content* digest means a
    registered scenario and its later re-registration with different
    parameters occupy different keys even though they share a name.  The
    *requested* backend (not the resolved one) is folded in so a
    toolchain-driven fallback still hits the entries it asked for, while
    compiled and Python results never share an entry."""
    from repro.engine.accel import requested_backend
    from repro.trace.workloads import workload_digest

    config = sweep_config.config_for(point)
    payload = repr((
        "repro-sweep-point", CACHE_SCHEMA_VERSION, code_digest(),
        point.benchmark,
        workload_digest(point.benchmark,
                        getattr(sweep_config, "scenario_profiles", ())),
        sweep_config.trace_length, sweep_config.seed,
        config_digest(config),
        requested_backend(config),
    )).encode()
    return hashlib.sha256(payload).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Aggregate report of one cache directory (``repro-experiments cache``)."""

    total_entries: int = 0
    total_bytes: int = 0
    unreadable_entries: int = 0
    stale_code_entries: int = 0
    oldest: Optional[float] = None
    #: workload name -> (entry count, bytes on disk).
    workloads: Dict[str, Tuple[int, int]] = dataclasses.field(default_factory=dict)

    def format(self) -> str:
        """Human-readable report."""
        lines = [f"entries: {self.total_entries} "
                 f"({self.total_bytes / 1024:.1f} KiB)"]
        if self.oldest is not None:
            age_days = (time.time() - self.oldest) / 86400.0
            lines.append(f"oldest entry: {age_days:.1f} days")
        lines.append(f"stale (old source code): {self.stale_code_entries}")
        if self.unreadable_entries:
            lines.append(f"unreadable/outdated schema: {self.unreadable_entries}")
        if self.workloads:
            lines.append("per workload:")
            for workload in sorted(self.workloads):
                count, nbytes = self.workloads[workload]
                lines.append(f"  {workload:<12} {count:5d} entries  "
                             f"{nbytes / 1024:8.1f} KiB")
        return "\n".join(lines)


@dataclasses.dataclass
class SizePruneReport:
    """Result of a :meth:`SweepCache.prune_to_size` eviction pass."""

    removed: int = 0
    bytes_freed: int = 0
    bytes_remaining: int = 0
    #: workload name -> entries evicted (``<unreadable>`` for entries
    #: that could not be attributed).
    per_workload: Dict[str, int] = dataclasses.field(default_factory=dict)

    def format(self) -> str:
        """Human-readable eviction summary (the CLI's output)."""
        lines = [f"evicted {self.removed} entries "
                 f"({self.bytes_freed / 1024:.1f} KiB freed, "
                 f"{self.bytes_remaining / 1024:.1f} KiB remain)"]
        for workload in sorted(self.per_workload):
            lines.append(f"  {workload:<16} {self.per_workload[workload]:5d} evicted")
        return "\n".join(lines)


class SweepCache:
    """Directory-backed store of simulated sweep points."""

    def __init__(self, cache_dir: Union[None, str, Path] = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        # run-time counters (telemetry for run_sweep reporting / tests)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.store_errors = 0

    # ------------------------------------------------------------------
    def path_for(self, sweep_config: "SweepConfig", point: "SweepPoint") -> Path:
        """Filesystem path of one point's entry."""
        key = point_key(sweep_config, point)
        return self.cache_dir / key[:2] / f"{key}.pkl"

    def get(self, sweep_config: "SweepConfig",
            point: "SweepPoint") -> Optional["SimStats"]:
        """Cached statistics of ``point``, or None on a miss."""
        path = self.path_for(sweep_config, point)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                raise EOFError("schema mismatch")
            stats = payload["stats"]
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                KeyError, TypeError, ImportError):
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def put(self, sweep_config: "SweepConfig", point: "SweepPoint",
            stats: "SimStats") -> None:
        """Store the statistics of one simulated point (atomic write).

        Filesystem failures (full disk, read-only mount) degrade to an
        uncached run instead of crashing a sweep whose simulation work is
        already done; they are tallied in :attr:`store_errors`.
        """
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "point": (point.benchmark, point.policy, point.num_registers),
            "trace_length": sweep_config.trace_length,
            "seed": sweep_config.seed,
            "code": code_digest(),
            "created": time.time(),
            "stats": stats,
        }
        tmp_name = None
        try:
            path = self.path_for(sweep_config, point)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except OSError:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            self.store_errors += 1
            return
        self.stores += 1

    # ------------------------------------------------------------------
    # Maintenance (the ``repro-experiments cache`` subcommand)
    # ------------------------------------------------------------------
    def iter_entries(self) -> Iterator[Tuple[Path, Optional[dict]]]:
        """Yield ``(path, payload)`` for every entry file on disk.

        ``payload`` is None for entries that cannot be read or that carry
        an outdated schema — those are unconditionally stale.
        """
        if not self.cache_dir.exists():
            return
        for path in sorted(self.cache_dir.rglob("*.pkl")):
            payload: Optional[dict] = None
            try:
                with open(path, "rb") as handle:
                    loaded = pickle.load(handle)
                if isinstance(loaded, dict) and \
                        loaded.get("schema") == CACHE_SCHEMA_VERSION:
                    payload = loaded
            except (OSError, pickle.PickleError, EOFError, AttributeError,
                    KeyError, TypeError, ImportError):
                # ImportError: an old entry pickled a class the simulator
                # has since moved or renamed — unconditionally stale.
                payload = None
            yield path, payload

    def stats(self) -> "CacheStats":
        """Aggregate entry counts and sizes, grouped per workload."""
        result = CacheStats()
        for path, payload in self.iter_entries():
            try:
                size = path.stat().st_size
            except OSError:  # pragma: no cover - concurrent cleanup
                continue
            result.total_entries += 1
            result.total_bytes += size
            if payload is None:
                result.unreadable_entries += 1
                continue
            workload = payload["point"][0]
            count, nbytes = result.workloads.get(workload, (0, 0))
            result.workloads[workload] = (count + 1, nbytes + size)
            created = payload.get("created")
            if created is not None:
                if result.oldest is None or created < result.oldest:
                    result.oldest = created
            if payload.get("code") != code_digest():
                result.stale_code_entries += 1
        return result

    def prune(self, max_age_days: Optional[float] = None,
              stale_code: bool = False,
              now: Optional[float] = None) -> int:
        """Delete entries older than ``max_age_days`` and/or produced by a
        different version of the simulator source; returns the count removed.

        Unreadable and outdated-schema entries are removed by either
        criterion — they can never be served again.  At least one criterion
        must be given (an unconditional wipe is :meth:`clear`).
        """
        if max_age_days is None and not stale_code:
            raise ValueError("prune needs max_age_days and/or stale_code "
                             "(use clear() to wipe the cache)")
        now = time.time() if now is None else now
        removed = 0
        for path, payload in self.iter_entries():
            if payload is None:
                drop = True
            else:
                drop = False
                if max_age_days is not None:
                    created = payload.get("created", 0.0)
                    drop = now - created > max_age_days * 86400.0
                if not drop and stale_code:
                    drop = payload.get("code") != code_digest()
            if drop:
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
        return removed

    def prune_to_size(self, max_size_mb: float) -> "SizePruneReport":
        """Evict oldest entries first until the cache fits ``max_size_mb``.

        The auto-prune policy for long-lived developer caches: entries
        are ranked by creation time (unreadable/outdated-schema entries
        first — they can never be served again and carry no timestamp)
        and deleted oldest-first until the remaining entries total at
        most ``max_size_mb`` megabytes.  Returns a
        :class:`SizePruneReport` with the per-workload eviction counts.
        """
        if max_size_mb < 0:
            raise ValueError("max_size_mb must be non-negative")
        budget = int(max_size_mb * 1024 * 1024)
        entries = []
        total = 0
        for path, payload in self.iter_entries():
            try:
                size = path.stat().st_size
            except OSError:  # pragma: no cover - concurrent cleanup
                continue
            if payload is None:
                created, workload = float("-inf"), "<unreadable>"
            else:
                created = payload.get("created", 0.0)
                workload = payload["point"][0]
            entries.append((created, path, size, workload))
            total += size
        entries.sort(key=lambda entry: entry[0])
        report = SizePruneReport(bytes_remaining=total)
        for created, path, size, workload in entries:
            if total <= budget:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                continue
            total -= size
            report.removed += 1
            report.bytes_freed += size
            report.bytes_remaining = total
            report.per_workload[workload] = \
                report.per_workload.get(workload, 0) + 1
        return report

    # ------------------------------------------------------------------
    def __contains__(self, item) -> bool:
        sweep_config, point = item
        return self.path_for(sweep_config, point).exists()

    def clear(self) -> int:
        """Delete every entry below the cache directory; returns the count."""
        removed = 0
        if not self.cache_dir.exists():
            return removed
        for path in self.cache_dir.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SweepCache({str(self.cache_dir)!r}, hits={self.hits}, "
                f"misses={self.misses}, stores={self.stores})")


def resolve_cache(cache: Union[None, bool, str, Path, SweepCache],
                  ) -> Optional[SweepCache]:
    """Normalise the ``cache`` argument accepted by ``run_sweep``.

    ``None`` / ``False`` → no caching; ``True`` → default directory;
    a path → cache rooted there; a :class:`SweepCache` → itself.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return SweepCache()
    if isinstance(cache, SweepCache):
        return cache
    return SweepCache(cache)
