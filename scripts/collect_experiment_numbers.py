#!/usr/bin/env python
"""Collect the paper-vs-measured numbers recorded in EXPERIMENTS.md.

Runs every experiment at a moderate scale (longer traces than the
benchmark harness, shorter than a full overnight run) and writes a JSON
summary that the documentation quotes.  Usage::

    python scripts/collect_experiment_numbers.py [output.json] [trace_length]
"""

import json
import sys
import time

from repro.experiments import (figure2, figure3, figure9, figure10, figure11,
                               section33, section44, table4)


def main() -> int:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "experiment_numbers.json"
    trace_length = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000
    sizes = (40, 48, 56, 64, 72, 80, 96, 112, 128, 160)
    started = time.time()
    data = {"trace_length": trace_length, "register_sizes": list(sizes)}

    # ----------------------------------------------------------- analytical
    fig9 = figure9.run()
    data["figure9"] = {
        "lus_access_time_ns": fig9.access_time_ns["LUsT"][0],
        "lus_energy_pj": fig9.energy_pj["LUsT"][0],
        "delay_margin_vs_smallest_int": fig9.lus_delay_margin_vs_smallest_int(),
        "energy_fraction_of_smallest_int": fig9.lus_energy_fraction_of_smallest_int(),
        "int_access_time_ns": dict(zip(fig9.sizes, fig9.access_time_ns["INT"], strict=True)),
        "fp_access_time_ns": dict(zip(fig9.sizes, fig9.access_time_ns["FP"], strict=True)),
    }
    sec44 = section44.run()
    data["section44"] = {
        "energy_conv_pj": sec44.energy_conv_pj,
        "energy_early_pj": sec44.energy_early_pj,
        "extended_storage_bytes": sec44.extended_storage_bytes,
        "lus_tables_bytes": sec44.lus_tables_bytes,
    }
    data["figure2"] = {
        policy: {state.value: cycles
                 for state, cycles in figure2.run(policy).state_durations().items()}
        for policy in ("conv", "basic", "extended")
    }

    # ----------------------------------------------------------- simulation
    fig3 = figure3.run(trace_length=trace_length, parallel=True)
    data["figure3"] = {
        "idle_overhead_int_pct": fig3.idle_overhead("int"),
        "idle_overhead_fp_pct": fig3.idle_overhead("fp"),
        "rows": {suite: [[row.benchmark, row.empty, row.ready, row.idle]
                         for row in fig3.rows[suite]]
                 for suite in ("int", "fp")},
    }

    fig10 = figure10.run(trace_length=trace_length, parallel=True)
    data["figure10"] = {
        "ipc": {benchmark: {policy: fig10.ipc(benchmark, policy)
                            for policy in ("conv", "basic", "extended")}
                for benchmark in fig10.int_benchmarks + fig10.fp_benchmarks},
        "hm": {suite: {policy: fig10.harmonic_mean(suite, policy)
                       for policy in ("conv", "basic", "extended")}
               for suite in ("int", "fp")},
        "speedup_pct": {suite: {policy: fig10.suite_speedup_percent(suite, policy)
                                for policy in ("basic", "extended")}
                        for suite in ("int", "fp")},
    }

    sec33 = section33.run(trace_length=trace_length, parallel=True)
    data["section33"] = {
        f"{suite}@{size}": sec33.speedup_percent(suite, size)
        for suite in ("fp", "int") for size in (64, 48, 40)
    }

    fig11 = figure11.run(trace_length=trace_length, sizes=sizes, parallel=True)
    data["figure11"] = {
        suite: {policy: dict(fig11.curve(suite, policy))
                for policy in ("conv", "basic", "extended")}
        for suite in ("int", "fp")
    }
    data["figure11_speedup_pct"] = {
        suite: {policy: dict(fig11.speedup_curve(suite, policy))
                for policy in ("basic", "extended")}
        for suite in ("int", "fp")
    }

    tab4 = table4.derive(fig11)
    data["table4"] = [
        {"suite": row.suite, "conv": row.conv_size, "target_ipc": row.target_ipc,
         "extended": row.extended_size, "saved_pct": row.saved_percent}
        for row in tab4.rows
    ]

    data["elapsed_seconds"] = round(time.time() - started, 1)
    with open(output_path, "w") as handle:
        json.dump(data, handle, indent=2, default=float)
    print(f"wrote {output_path} in {data['elapsed_seconds']}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
