#!/usr/bin/env python
"""CI smoke test for ``repro-serve``: single-flight under the real CLI.

Starts the actual ``python -m repro.serve`` process against a temporary
store, fires N concurrent *identical* sweep-point requests at it, and
asserts the service's core contract:

* every response is HTTP 200 and **byte-identical** — concurrent
  duplicates can never observe different payloads;
* the server performed **exactly one** computation — the duplicates
  were deduplicated in flight (single-flight), not each simulated;
* a follow-up request is served from the cache, still byte-identical.

The server's stdout/stderr goes to ``--log`` and the final ``/metrics``
snapshot to ``--metrics-out`` — CI uploads both as artifacts, so a red
run ships its own diagnostics.  Exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The identical request every concurrent client sends.  Small trace:
#: the point of the job is the dedup contract, not simulation scale.
REQUEST = {"benchmark": "gcc", "policy": "extended", "num_registers": 48,
           "trace_length": 2_000, "seed": 20_260_808}


def wait_for_listen_line(log_path: Path, process, timeout: float = 60.0) -> str:
    """Poll the server log for the listening banner; return the URL."""
    deadline = time.monotonic() + timeout
    pattern = re.compile(r"listening on (http://[0-9.]+:\d+)")
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"server exited early with code {process.returncode}; "
                f"see {log_path}")
        if log_path.exists():
            match = pattern.search(log_path.read_text())
            if match:
                return match.group(1)
        time.sleep(0.1)
    raise RuntimeError(f"server did not start within {timeout:g}s; "
                       f"see {log_path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Single-flight smoke test against a real repro-serve "
                    "process.")
    parser.add_argument("--requests", type=int, default=8,
                        help="concurrent identical requests (default: 8)")
    parser.add_argument("--log", default="serve-smoke.log",
                        help="server stdout/stderr (CI artifact)")
    parser.add_argument("--metrics-out", default="serve-metrics.json",
                        help="final /metrics snapshot (CI artifact)")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.serve.client import ServeClient

    log_path = Path(args.log).resolve()
    store = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")

    failures = []
    with open(log_path, "w") as log_handle:
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0",
             "--cache-dir", store],
            stdout=log_handle, stderr=subprocess.STDOUT,
            cwd=REPO_ROOT, env=env)
        try:
            url = wait_for_listen_line(log_path, process)
            print(f"server up at {url} (store {store})")
            client = ServeClient(url, timeout=300.0)
            health = client.healthz().json()
            print(f"healthz: {health}")

            # ---- N concurrent identical misses ------------------------
            responses = [None] * args.requests

            def fire(index):
                responses[index] = client.sweep_point_raw(dict(REQUEST))

            threads = [threading.Thread(target=fire, args=(index,))
                       for index in range(args.requests)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            statuses = [response.status for response in responses]
            if statuses != [200] * args.requests:
                failures.append(f"expected all 200s, got {statuses}")
            bodies = {response.body for response in responses}
            if len(bodies) != 1:
                failures.append(
                    f"{len(bodies)} distinct response bodies across "
                    f"{args.requests} concurrent duplicates (must be 1)")
            origins = sorted(response.served_from or "?"
                             for response in responses)
            print(f"served_from: {origins}")
            if origins.count("computed") > 1:
                failures.append(f"more than one leader computed: {origins}")

            metrics = client.metrics()
            computations = metrics["counters"].get("sweep_computations", 0)
            print(f"computations: {computations} "
                  f"(requests: {args.requests})")
            if computations != 1:
                failures.append(
                    f"expected exactly 1 computation for "
                    f"{args.requests} concurrent duplicates, "
                    f"got {computations}")

            # ---- a follow-up request is a cache hit, same bytes -------
            repeat = client.sweep_point_raw(dict(REQUEST))
            if repeat.served_from != "cache":
                failures.append(f"follow-up served from "
                                f"{repeat.served_from!r}, expected 'cache'")
            if repeat.body not in bodies:
                failures.append("cache-served follow-up differs from the "
                                "computed response bytes")

            final_metrics = client.metrics()
            with open(args.metrics_out, "w") as handle:
                json.dump(final_metrics, handle, indent=2)
            print(f"metrics snapshot written to {args.metrics_out}")
        except Exception as exc:
            failures.append(f"{type(exc).__name__}: {exc}")
        finally:
            process.terminate()
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

    if failures:
        print("SERVE SMOKE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("serve smoke ok: single-flight dedup held, responses "
          "byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
