#!/usr/bin/env python
"""Load-generation harness for the ``repro-serve`` sweep service.

Drives many concurrent clients with zipf-skewed scenario popularity
against a server (an in-process one over a temporary store by default,
or ``--url`` for an already-running endpoint) and reports p50/p99
latency, throughput and hit rate — the ``"serve"`` section the
``BENCH_*.json`` regression gate tracks.  Usage::

    python scripts/bench_serve.py                         # self-hosted run
    python scripts/bench_serve.py --clients 16 --requests 600
    python scripts/bench_serve.py --url http://127.0.0.1:8713
    python scripts/bench_serve.py --merge-into BENCH_x.json   # embed section

The default run is deliberately CI-sized (seconds, serial compute
worker); scale ``--clients``/``--requests``/``--trace-length`` up for a
real capacity probe.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Zipf-skewed load generation against repro-serve.")
    parser.add_argument("--url", default=None,
                        help="target an already-running server instead of "
                             "self-hosting one over a temporary store")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads (default: 8)")
    parser.add_argument("--requests", type=int, default=200,
                        help="total requests across all clients "
                             "(default: 200)")
    parser.add_argument("--pool-size", type=int, default=24,
                        help="distinct sweep points in the popularity pool "
                             "(default: 24)")
    parser.add_argument("--zipf-skew", type=float, default=1.1,
                        help="popularity skew; 0 = uniform (default: 1.1)")
    parser.add_argument("--trace-length", type=int, default=2_000,
                        help="instructions per simulated point "
                             "(default: 2000)")
    parser.add_argument("--seed", type=int, default=0,
                        help="sampler seed (default: 0)")
    parser.add_argument("--cache-dir", default=None,
                        help="self-hosted store root (default: a fresh "
                             "temporary directory — every first touch is a "
                             "genuine miss)")
    parser.add_argument("--output", default=None,
                        help="also write the report JSON here")
    parser.add_argument("--merge-into", default=None, metavar="BENCH_JSON",
                        help="embed the report as the 'serve' section of an "
                             "existing BENCH_*.json snapshot")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.serve.loadgen import collect_serve_report, format_report

    report = collect_serve_report(
        args.url, clients=args.clients, requests=args.requests,
        pool_size=args.pool_size, zipf_skew=args.zipf_skew,
        trace_length=args.trace_length, seed=args.seed,
        cache_dir=args.cache_dir)
    print(format_report(report))

    if args.output:
        path = Path(args.output).resolve()
        with open(path, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote report to {path}")
    if args.merge_into:
        path = Path(args.merge_into).resolve()
        with open(path) as handle:
            snapshot = json.load(handle)
        snapshot["serve"] = report
        with open(path, "w") as handle:
            json.dump(snapshot, handle, indent=2)
        print(f"merged 'serve' section into {path}")
    return 1 if report["errors"] else 0


if __name__ == "__main__":
    sys.exit(main())
