#!/usr/bin/env python
"""Snapshot the wall-clock cost of regenerating every paper artefact.

Runs the ``benchmarks/`` harness under ``pytest-benchmark`` with
``--benchmark-json`` and writes a ``BENCH_<timestamp>.json`` snapshot into
the repository root (or ``--output``), so the performance trajectory of
the simulator is tracked PR over PR.  Usage::

    python scripts/bench_baseline.py                # BENCH_<UTC timestamp>.json
    python scripts/bench_baseline.py --output BENCH_pr1.json
    python scripts/bench_baseline.py --select figure11   # one artefact only

The script is a thin wrapper over::

    PYTHONPATH=src python -m pytest benchmarks --benchmark-json <out>

and exits with pytest's return code.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the benchmark harness and write a BENCH_*.json snapshot.")
    parser.add_argument("--output", default=None,
                        help="snapshot path (default: BENCH_<UTC timestamp>.json "
                             "in the repository root)")
    parser.add_argument("--select", default=None,
                        help="pytest -k expression to run a subset of the harness")
    args = parser.parse_args(argv)

    if args.output is None:
        stamp = datetime.datetime.now(datetime.timezone.utc).strftime("%Y%m%dT%H%M%SZ")
        output = REPO_ROOT / f"BENCH_{stamp}.json"
    else:
        output = Path(args.output).resolve()

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")

    command = [sys.executable, "-m", "pytest", "benchmarks", "-q",
               "--benchmark-json", str(output)]
    if args.select:
        command += ["-k", args.select]
    returncode = subprocess.call(command, cwd=REPO_ROOT, env=env)
    if returncode != 0:
        return returncode

    # Human-readable recap of what was recorded.
    with open(output) as handle:
        payload = json.load(handle)
    benches = payload.get("benchmarks", [])
    print(f"\nwrote {output} ({len(benches)} benchmarks)")
    for bench in sorted(benches, key=lambda b: b["stats"]["mean"], reverse=True):
        print(f"  {bench['stats']['mean']:8.2f}s  {bench['name']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
