#!/usr/bin/env python
"""Snapshot the wall-clock cost of regenerating every paper artefact.

Runs the ``benchmarks/`` harness under ``pytest-benchmark`` with
``--benchmark-json`` and writes a ``BENCH_<timestamp>.json`` snapshot into
the repository root (or ``--output``), so the performance trajectory of
the simulator is tracked PR over PR.  Usage::

    python scripts/bench_baseline.py                # BENCH_<UTC timestamp>.json
    python scripts/bench_baseline.py --output BENCH_pr1.json
    python scripts/bench_baseline.py --select figure11   # one artefact only

The script is a thin wrapper over::

    PYTHONPATH=src python -m pytest benchmarks --benchmark-json <out>

plus a serial probe over representative Figure 11 grid points that
records the event-driven scheduler's counters (cycles skipped,
fast-forwards, ready-set peak size) alongside each point's wall-clock;
the probe results are embedded in the snapshot under ``"scheduler"``.
Exits with pytest's return code.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Representative Figure 11 grid points for the scheduler probe: the
#: memory-latency-bound FP points the event clock targets (tight swim),
#: one loose FP point and one branchy integer point for contrast.
SCHEDULER_PROBE_POINTS = (
    ("swim", "conv", 40),
    ("swim", "conv", 48),
    ("swim", "extended", 40),
    ("swim", "extended", 48),
    ("swim", "extended", 96),
    ("gcc", "conv", 48),
)


#: Register sizes of the Figure 11 sub-grid used for the skip-fraction
#: comparison (tight through loose; QUICK_SIZES of the experiment runner).
GRID_SIZES = (40, 48, 64, 96, 160)


def _make_pr1_semantics_clock():
    """Build a clock with PR 1's wake rules, for snapshot comparison.

    Two differences from the current ``EventClock``: any ready instruction
    forbids skipping (no structural-stall fast-forward), and completion
    events stranded by squashes still wake the machine (no dead-bucket
    dropping).  Produces the same bit-identical stats — it only skips a
    subset of the skippable cycles — so the ``cycles_skipped`` delta
    isolates the scheduler-index improvements.
    """
    from repro.engine import EventClock
    from repro.engine.stages import dispatch_hazard

    class PR1SemanticsClock(EventClock):
        def _next_wake(self, state):
            cycle = state.cycle
            head = state.ros.head()
            if head is not None and head.completed:
                return None
            wake = state.completions.next_cycle()      # dead buckets wake too
            if wake is not None and wake <= cycle:
                return None
            fetch_unit = state.fetch_unit
            if len(state.decode_queue) >= state.decode_capacity:
                pass
            elif fetch_unit.trace_exhausted:
                pass
            elif fetch_unit.stalled_until > cycle:
                stall_end = fetch_unit.stalled_until
                wake = stall_end if wake is None else min(wake, stall_end)
            else:
                return None
            stall_reason = None
            if state.decode_queue:
                ready_cycle, op = state.decode_queue[0]
                if ready_cycle > cycle:
                    wake = ready_cycle if wake is None else min(wake, ready_cycle)
                else:
                    stall_reason = dispatch_hazard(state, op.inst)
                    if stall_reason is None:
                        return None
            if state.ready:
                return None          # a ready instruction forbids skipping
            if wake is None or wake <= cycle:
                return None
            return wake, stall_reason, 0

    return PR1SemanticsClock


def collect_scheduler_counters(trace_length: int = 4_000,
                               include_grid: bool = True) -> dict:
    """Serially simulate the probe points and collect scheduler telemetry.

    Runs at the same scale as the ``benchmarks/`` harness (trace length,
    default warm-up) so the wall-clock numbers are comparable PR over PR.
    With ``include_grid`` (the default) it also sweeps a Figure 11
    sub-grid under both the current clock and a PR 1-semantics reference
    clock, recording the ``cycles_skipped`` fraction of each so the
    skip-set enlargement is tracked in-snapshot; ``--probe-only`` (CI)
    skips the grid, which dominates the runtime.
    """
    import time as time_module

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.engine import EventClock, SimulationEngine
    from repro.pipeline.config import ProcessorConfig
    from repro.rename.free_list import FreeListError
    from repro.trace.workloads import (fp_workloads, get_workload,
                                       integer_workloads)

    points = []
    for benchmark_name, policy, registers in SCHEDULER_PROBE_POINTS:
        trace = get_workload(benchmark_name, trace_length)
        config = ProcessorConfig(release_policy=policy,
                                 num_physical_int=registers,
                                 num_physical_fp=registers)
        engine = SimulationEngine(trace, config, clock=EventClock())
        start = time_module.perf_counter()
        stats = engine.run()
        elapsed = time_module.perf_counter() - start
        clock = engine.clock
        points.append({
            "benchmark": benchmark_name,
            "policy": policy,
            "num_registers": registers,
            "wall_clock_s": round(elapsed, 4),
            "cycles": stats.cycles,
            "cycles_skipped": clock.cycles_skipped,
            "skip_fraction": round(clock.cycles_skipped / stats.cycles, 4)
            if stats.cycles else 0.0,
            "fast_forwards": clock.fast_forwards,
            "ready_set_peak": engine.state.ready.peak_size,
            "ipc": round(stats.ipc, 4),
        })
    total_cycles = sum(p["cycles"] for p in points)
    total_skipped = sum(p["cycles_skipped"] for p in points)
    result = {
        "trace_length": trace_length,
        "points": points,
        "probe_skip_fraction": round(total_skipped / total_cycles, 4)
        if total_cycles else 0.0,
    }
    if not include_grid:
        return result

    # Figure 11 sub-grid: current clock vs PR 1-semantics reference.
    pr1_clock_class = _make_pr1_semantics_clock()
    grid = {"new": [0, 0], "pr1": [0, 0]}
    strictly_higher = 0
    grid_points = 0
    for benchmark_name in fp_workloads() + integer_workloads():
        for policy in ("conv", "basic", "extended"):
            for registers in GRID_SIZES:
                trace = get_workload(benchmark_name, trace_length)
                config = ProcessorConfig(release_policy=policy,
                                         num_physical_int=registers,
                                         num_physical_fp=registers)
                try:
                    new = SimulationEngine(trace, config, clock=EventClock())
                    new_stats = new.run()
                    ref = SimulationEngine(trace, config,
                                           clock=pr1_clock_class())
                    ref_stats = ref.run()
                except FreeListError:
                    continue     # known seed-era crash configs (ROADMAP)
                if ref_stats.cycles != new_stats.cycles:
                    raise RuntimeError(
                        f"PR1-semantics reference clock diverged on "
                        f"{benchmark_name}/{policy}/P{registers}: "
                        f"{ref_stats.cycles} vs {new_stats.cycles} cycles — "
                        f"the snapshot comparison would be meaningless")
                grid_points += 1
                grid["new"][0] += new.clock.cycles_skipped
                grid["new"][1] += new_stats.cycles
                grid["pr1"][0] += ref.clock.cycles_skipped
                grid["pr1"][1] += ref_stats.cycles
                if new.clock.cycles_skipped > ref.clock.cycles_skipped:
                    strictly_higher += 1

    result["figure11_grid"] = {
        "sizes": list(GRID_SIZES),
        "points": grid_points,
        "skip_fraction": round(grid["new"][0] / grid["new"][1], 4)
        if grid["new"][1] else 0.0,
        "pr1_semantics_skip_fraction":
            round(grid["pr1"][0] / grid["pr1"][1], 4)
            if grid["pr1"][1] else 0.0,
        "points_skipping_strictly_more": strictly_higher,
    }
    return result


def format_probe_summary(scheduler: dict) -> str:
    """Human/CI-readable recap of the scheduler probe (markdown-friendly)."""
    lines = [f"scheduler probe (trace length {scheduler['trace_length']}):"]
    for point in scheduler["points"]:
        lines.append(
            f"  {point['benchmark']}/{point['policy']}/"
            f"P{point['num_registers']:<3}  {point['wall_clock_s']:6.3f}s  "
            f"skip={point['skip_fraction']:.0%}  "
            f"ff={point['fast_forwards']}  "
            f"ready_peak={point['ready_set_peak']}  ipc={point['ipc']:.2f}")
    lines.append(f"  probe cycles_skipped fraction: "
                 f"{scheduler['probe_skip_fraction']:.1%}")
    throughput = sum(p["cycles"] / p["wall_clock_s"]
                     for p in scheduler["points"] if p["wall_clock_s"])
    lines.append(f"  aggregate simulated cycles/s over the probe: "
                 f"{throughput:,.0f}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the benchmark harness and write a BENCH_*.json snapshot.")
    parser.add_argument("--output", default=None,
                        help="snapshot path (default: BENCH_<UTC timestamp>.json "
                             "in the repository root)")
    parser.add_argument("--select", default=None,
                        help="pytest -k expression to run a subset of the harness")
    parser.add_argument("--probe-only", action="store_true",
                        help="skip the pytest harness and the Figure 11 grid "
                             "comparison; run only the fast scheduler probe "
                             "and print its summary (CI smoke signal). "
                             "Appends to $GITHUB_STEP_SUMMARY when set.")
    args = parser.parse_args(argv)

    if args.probe_only:
        scheduler = collect_scheduler_counters(include_grid=False)
        summary = format_probe_summary(scheduler)
        print(summary)
        step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
        if step_summary:
            with open(step_summary, "a") as handle:
                handle.write("### Bench probe\n\n```\n" + summary + "\n```\n")
        return 0

    if args.output is None:
        stamp = datetime.datetime.now(datetime.timezone.utc).strftime("%Y%m%dT%H%M%SZ")
        output = REPO_ROOT / f"BENCH_{stamp}.json"
    else:
        output = Path(args.output).resolve()

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")

    command = [sys.executable, "-m", "pytest", "benchmarks", "-q",
               "--benchmark-json", str(output)]
    if args.select:
        command += ["-k", args.select]
    returncode = subprocess.call(command, cwd=REPO_ROOT, env=env)
    if returncode != 0:
        return returncode

    # Embed the scheduler telemetry probe into the snapshot.
    scheduler = collect_scheduler_counters()
    with open(output) as handle:
        payload = json.load(handle)
    payload["scheduler"] = scheduler
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2)

    # Human-readable recap of what was recorded.
    benches = payload.get("benchmarks", [])
    print(f"\nwrote {output} ({len(benches)} benchmarks)")
    for bench in sorted(benches, key=lambda b: b["stats"]["mean"], reverse=True):
        print(f"  {bench['stats']['mean']:8.2f}s  {bench['name']}")
    print()
    print(format_probe_summary(scheduler))
    grid = scheduler["figure11_grid"]
    print(f"figure11 grid ({grid['points']} points, sizes {grid['sizes']}): "
          f"skip={grid['skip_fraction']:.2%} vs PR1 semantics "
          f"{grid['pr1_semantics_skip_fraction']:.2%} "
          f"({grid['points_skipping_strictly_more']} points strictly higher)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
