#!/usr/bin/env python
"""Snapshot the wall-clock cost of regenerating every paper artefact.

Runs the ``benchmarks/`` harness under ``pytest-benchmark`` with
``--benchmark-json`` and writes a ``BENCH_<timestamp>.json`` snapshot into
the repository root (or ``--output``), so the performance trajectory of
the simulator is tracked PR over PR.  Usage::

    python scripts/bench_baseline.py                # BENCH_<UTC timestamp>.json
    python scripts/bench_baseline.py --output BENCH_pr1.json
    python scripts/bench_baseline.py --select figure11   # one artefact only

The script is a thin wrapper over::

    PYTHONPATH=src python -m pytest benchmarks --benchmark-json <out>

plus two serial probes embedded into the snapshot:

* ``"scheduler"`` — representative Figure 11 grid points with the
  event-driven scheduler's counters (cycles skipped, fast-forwards,
  ready-set peak size) alongside each point's wall-clock;
* ``"scheduler_compiled"`` — the same grid points on the compiled C
  engine (``repro.engine.accel``); each point records the backend that
  *actually* ran (``engine_backend``), so a toolchain fallback is
  visible in the snapshot instead of masquerading as a slow C core;
* ``"sweep_point"`` / ``"sweep_point_compiled"`` — the **end-to-end**
  cost of the same grid points: engine construction (trace export,
  warm-up) *plus* the run, which is what a sweep actually pays per
  point.  The compiled section also records the export-artefact cache
  hit/miss counters (``repro.engine.accel.artefacts``), proving the
  per-trace columns were amortised across the probe's points;
* ``"generation"`` — trace-generation throughput (scalar oracle vs the
  vectorised bulk-draw path) over the scenario library plus
  representative SPEC-like workloads;
* ``"serve"`` — the ``repro-serve`` HTTP service under zipf-skewed
  concurrent load (local loopback, serial compute worker): throughput,
  p50/p99 latency and the cache + single-flight hit rate (see
  ``scripts/bench_serve.py`` for the full-size harness).  A degraded or
  error-laden run is recorded but excluded from the gate.

``--probe-only`` (the CI mode) skips the pytest harness, runs the
probes, and *gates*: it compares the probe against the newest committed
``BENCH_*.json`` and exits non-zero when any tracked throughput
regressed by more than the tolerance factor (default 1.4, generous
enough for runner-to-runner variance; override with ``--tolerance`` or
``$BENCH_PROBE_TOLERANCE``; ``--no-compare`` disables the gate).  The
gate is strictly like-for-like: the Python probe is compared against
the baseline's Python probe and the compiled probe against the
baseline's compiled probe, and a compiled section whose points fell
back to the Python engine is excluded from the compiled comparison.
``--engine`` selects which scheduler probes run in probe-only mode
(``python`` — the default, ``compiled``, or ``both``).  Pass
``--output`` to also write the probe JSON (uploaded as a CI artifact).
Otherwise exits with pytest's return code.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Representative Figure 11 grid points for the scheduler probe: the
#: memory-latency-bound FP points the event clock targets (tight swim),
#: one loose FP point and one branchy integer point for contrast.
SCHEDULER_PROBE_POINTS = (
    ("swim", "conv", 40),
    ("swim", "conv", 48),
    ("swim", "extended", 40),
    ("swim", "extended", 48),
    ("swim", "extended", 96),
    ("gcc", "conv", 48),
)


#: Register sizes of the Figure 11 sub-grid used for the skip-fraction
#: comparison (tight through loose; QUICK_SIZES of the experiment runner).
GRID_SIZES = (40, 48, 64, 96, 160)


def _make_pr1_semantics_clock():
    """Build a clock with PR 1's wake rules, for snapshot comparison.

    Two differences from the current ``EventClock``: any ready instruction
    forbids skipping (no structural-stall fast-forward), and completion
    events stranded by squashes still wake the machine (no dead-bucket
    dropping).  Produces the same bit-identical stats — it only skips a
    subset of the skippable cycles — so the ``cycles_skipped`` delta
    isolates the scheduler-index improvements.
    """
    from repro.engine import EventClock
    from repro.engine.stages import dispatch_hazard

    class PR1SemanticsClock(EventClock):
        def _next_wake(self, state):
            cycle = state.cycle
            head = state.ros.head()
            if head is not None and head.completed:
                return None
            wake = state.completions.next_cycle()      # dead buckets wake too
            if wake is not None and wake <= cycle:
                return None
            fetch_unit = state.fetch_unit
            if len(state.decode_queue) >= state.decode_capacity:
                pass
            elif fetch_unit.trace_exhausted:
                pass
            elif fetch_unit.stalled_until > cycle:
                stall_end = fetch_unit.stalled_until
                wake = stall_end if wake is None else min(wake, stall_end)
            else:
                return None
            stall_reason = None
            if state.decode_queue:
                ready_cycle, op = state.decode_queue[0]
                if ready_cycle > cycle:
                    wake = ready_cycle if wake is None else min(wake, ready_cycle)
                else:
                    stall_reason = dispatch_hazard(state, op.inst)
                    if stall_reason is None:
                        return None
            if state.ready:
                return None          # a ready instruction forbids skipping
            if wake is None or wake <= cycle:
                return None
            return wake, stall_reason, 0

    return PR1SemanticsClock


def collect_scheduler_counters(trace_length: int = 4_000,
                               include_grid: bool = True,
                               engine: str = "python") -> dict:
    """Serially simulate the probe points and collect scheduler telemetry.

    Runs at the same scale as the ``benchmarks/`` harness (trace length,
    default warm-up) so the wall-clock numbers are comparable PR over PR.
    ``engine`` pins the backend ("python" or "compiled"); the compiled
    backend is warmed (built + self-checked) before the timed loop so the
    one-time probe cost does not pollute the first point, and each point
    records the backend that actually produced it — a toolchain fallback
    records ``"python"``.  With ``include_grid`` (the default) it also
    sweeps a Figure 11 sub-grid under both the current clock and a PR
    1-semantics reference clock, recording the ``cycles_skipped``
    fraction of each so the skip-set enlargement is tracked in-snapshot;
    ``--probe-only`` (CI) skips the grid, which dominates the runtime.
    """
    import time as time_module

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.engine import EventClock, SimulationEngine
    from repro.pipeline.config import ProcessorConfig
    from repro.rename.free_list import FreeListError
    from repro.trace.workloads import (fp_workloads, get_workload,
                                       integer_workloads)

    if engine == "compiled":
        from repro.engine import accel

        accel.resolve_engine_backend(ProcessorConfig(engine="compiled"))

    points = []
    for benchmark_name, policy, registers in SCHEDULER_PROBE_POINTS:
        trace = get_workload(benchmark_name, trace_length)
        config = ProcessorConfig(release_policy=policy,
                                 num_physical_int=registers,
                                 num_physical_fp=registers,
                                 engine=engine)
        sim = SimulationEngine(trace, config, clock=EventClock())
        start = time_module.perf_counter()
        stats = sim.run()
        elapsed = time_module.perf_counter() - start
        clock = sim.clock
        compiled = sim.backend_used == "compiled"
        points.append({
            "benchmark": benchmark_name,
            "policy": policy,
            "num_registers": registers,
            "engine_backend": sim.backend_used,
            "wall_clock_s": round(elapsed, 4),
            "cycles": stats.cycles,
            # The compiled core steps every cycle: the event clock never
            # runs, so its counters are structurally zero there.
            "cycles_skipped": 0 if compiled else clock.cycles_skipped,
            "skip_fraction": 0.0 if compiled or not stats.cycles
            else round(clock.cycles_skipped / stats.cycles, 4),
            "fast_forwards": 0 if compiled else clock.fast_forwards,
            "ready_set_peak": sim.compiled_ready_peak if compiled
            else sim.state.ready.peak_size,
            "ipc": round(stats.ipc, 4),
        })
    total_cycles = sum(p["cycles"] for p in points)
    total_skipped = sum(p["cycles_skipped"] for p in points)
    result = {
        "trace_length": trace_length,
        "engine_requested": engine,
        "engine_backend": probe_backend_label({"points": points}),
        "points": points,
        "probe_skip_fraction": round(total_skipped / total_cycles, 4)
        if total_cycles else 0.0,
    }
    if not include_grid:
        return result

    # Figure 11 sub-grid: current clock vs PR 1-semantics reference.
    pr1_clock_class = _make_pr1_semantics_clock()
    grid = {"new": [0, 0], "pr1": [0, 0]}
    strictly_higher = 0
    grid_points = 0
    for benchmark_name in fp_workloads() + integer_workloads():
        for policy in ("conv", "basic", "extended"):
            for registers in GRID_SIZES:
                trace = get_workload(benchmark_name, trace_length)
                config = ProcessorConfig(release_policy=policy,
                                         num_physical_int=registers,
                                         num_physical_fp=registers)
                try:
                    new = SimulationEngine(trace, config, clock=EventClock())
                    new_stats = new.run()
                    ref = SimulationEngine(trace, config,
                                           clock=pr1_clock_class())
                    ref_stats = ref.run()
                except FreeListError:
                    continue     # known seed-era crash configs (ROADMAP)
                if ref_stats.cycles != new_stats.cycles:
                    raise RuntimeError(
                        f"PR1-semantics reference clock diverged on "
                        f"{benchmark_name}/{policy}/P{registers}: "
                        f"{ref_stats.cycles} vs {new_stats.cycles} cycles — "
                        f"the snapshot comparison would be meaningless")
                grid_points += 1
                grid["new"][0] += new.clock.cycles_skipped
                grid["new"][1] += new_stats.cycles
                grid["pr1"][0] += ref.clock.cycles_skipped
                grid["pr1"][1] += ref_stats.cycles
                if new.clock.cycles_skipped > ref.clock.cycles_skipped:
                    strictly_higher += 1

    result["figure11_grid"] = {
        "sizes": list(GRID_SIZES),
        "points": grid_points,
        "skip_fraction": round(grid["new"][0] / grid["new"][1], 4)
        if grid["new"][1] else 0.0,
        "pr1_semantics_skip_fraction":
            round(grid["pr1"][0] / grid["pr1"][1], 4)
            if grid["pr1"][1] else 0.0,
        "points_skipping_strictly_more": strictly_higher,
    }
    return result


def collect_sweep_point_probe(trace_length: int = 4_000,
                              engine: str = "python",
                              repetitions: int = 3) -> dict:
    """Time the probe points **end-to-end**: construction plus run.

    The scheduler probe times ``run()`` alone; a sweep additionally pays
    engine construction — trace export and the warm-up pass — for every
    point.  This probe measures that whole cost (best of ``repetitions``
    per point, traces pre-generated as a sweep's workload cache would),
    and for the compiled backend records the export-artefact cache
    hit/miss deltas: hits > 0 is the amortisation proof the bench gate
    snapshot carries.
    """
    import time as time_module

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.engine import SimulationEngine
    from repro.engine.accel.artefacts import EXPORT_CACHE
    from repro.pipeline.config import ProcessorConfig
    from repro.trace.workloads import get_workload

    if engine == "compiled":
        from repro.engine import accel

        accel.resolve_engine_backend(ProcessorConfig(engine="compiled"))

    for benchmark_name, _, _ in SCHEDULER_PROBE_POINTS:
        get_workload(benchmark_name, trace_length)     # pre-generate
    hits_before, misses_before = EXPORT_CACHE.counters()
    best: dict = {}
    recorded: dict = {}
    for _ in range(repetitions):
        for benchmark_name, policy, registers in SCHEDULER_PROBE_POINTS:
            trace = get_workload(benchmark_name, trace_length)
            config = ProcessorConfig(release_policy=policy,
                                     num_physical_int=registers,
                                     num_physical_fp=registers,
                                     engine=engine)
            start = time_module.perf_counter()
            sim = SimulationEngine(trace, config)
            stats = sim.run()
            elapsed = time_module.perf_counter() - start
            key = (benchmark_name, policy, registers)
            if elapsed < best.get(key, float("inf")):
                best[key] = elapsed
            recorded[key] = (sim.backend_used, stats.cycles,
                             round(stats.ipc, 4))
    hits_after, misses_after = EXPORT_CACHE.counters()
    points = []
    for (benchmark_name, policy, registers), elapsed in best.items():
        backend, cycles, ipc = recorded[(benchmark_name, policy, registers)]
        points.append({
            "benchmark": benchmark_name,
            "policy": policy,
            "num_registers": registers,
            "engine_backend": backend,
            "wall_clock_s": round(elapsed, 4),
            "cycles": cycles,
            "ipc": ipc,
        })
    return {
        "trace_length": trace_length,
        "repetitions": repetitions,
        "engine_requested": engine,
        "engine_backend": probe_backend_label({"points": points}),
        "points": points,
        "export_cache_hits": hits_after - hits_before,
        "export_cache_misses": misses_after - misses_before,
    }


def format_sweep_point_summary(sweep_point: dict) -> str:
    """Human/CI-readable recap of the end-to-end sweep-point probe."""
    backend = probe_backend_label(sweep_point)
    requested = sweep_point.get("engine_requested", "python")
    label = backend if backend == requested \
        else f"{backend}, requested {requested}"
    lines = [f"sweep-point probe (end-to-end: construct + warm-up + run; "
             f"trace length {sweep_point['trace_length']}, engine {label}):"]
    total_wall = 0.0
    for point in sweep_point["points"]:
        total_wall += point["wall_clock_s"]
        lines.append(
            f"  {point['benchmark']}/{point['policy']}/"
            f"P{point['num_registers']:<3}  {point['wall_clock_s']:6.3f}s  "
            f"ipc={point['ipc']:.2f}")
    throughput = scheduler_throughput(sweep_point)
    lines.append(f"  total wall {total_wall:.3f}s; aggregate simulated "
                 f"cycles/s end-to-end: {throughput:,.0f}")
    lines.append(f"  export-artefact cache: "
                 f"{sweep_point['export_cache_hits']} hits / "
                 f"{sweep_point['export_cache_misses']} misses")
    return "\n".join(lines)


#: SPEC-like workloads sampled by the generation probe (one per kernel
#: family), on top of the whole scenario library.
GENERATION_PROBE_BENCHMARKS = ("gcc", "li", "compress", "swim", "tomcatv")


def collect_generation_throughput(trace_length: int = 30_000) -> dict:
    """Time trace generation, scalar oracle vs vectorised, per workload.

    Each workload is generated once per mode per repetition (cache
    bypassed); the best of three repetitions is kept.  The aggregate
    ``vector_inst_per_s`` over the scenario grid is the number the CI
    bench gate tracks.
    """
    import time as time_module

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.trace.workloads import (SCENARIOS, generate_scenario_trace,
                                       generate_trace, get_profile,
                                       scenario_workloads)

    def generate(name, vectorized):
        if name in SCENARIOS:
            return generate_scenario_trace(SCENARIOS[name], trace_length,
                                           seed=1, vectorized=vectorized)
        return generate_trace(get_profile(name), trace_length, seed=1,
                              vectorized=vectorized)

    points = []
    for name in list(scenario_workloads()) + list(GENERATION_PROBE_BENCHMARKS):
        best = {False: float("inf"), True: float("inf")}
        length = 0
        for _ in range(3):
            for vectorized in (False, True):
                start = time_module.perf_counter()
                trace = generate(name, vectorized)
                elapsed = time_module.perf_counter() - start
                best[vectorized] = min(best[vectorized], elapsed)
                length = len(trace)
        points.append({
            "workload": name,
            "scenario": name in SCENARIOS,
            "instructions": length,
            "scalar_inst_per_s": round(length / best[False]),
            "vector_inst_per_s": round(length / best[True]),
            "speedup": round(best[False] / best[True], 3),
        })
    scenario_points = [p for p in points if p["scenario"]]
    return {
        "trace_length": trace_length,
        "points": points,
        "scenario_vector_inst_per_s": round(
            sum(p["instructions"] for p in scenario_points)
            / sum(p["instructions"] / p["vector_inst_per_s"]
                  for p in scenario_points)),
        "scenario_speedup": round(
            sum(p["instructions"] / p["scalar_inst_per_s"]
                for p in scenario_points)
            / sum(p["instructions"] / p["vector_inst_per_s"]
                  for p in scenario_points), 3),
    }


def format_generation_summary(generation: dict) -> str:
    """Human/CI-readable recap of the generation probe."""
    lines = [f"generation probe (trace length {generation['trace_length']}):"]
    for point in generation["points"]:
        tag = "scenario " if point["scenario"] else "benchmark"
        lines.append(
            f"  {tag} {point['workload']:<18} "
            f"scalar {point['scalar_inst_per_s']:>9,} inst/s   "
            f"vector {point['vector_inst_per_s']:>9,} inst/s   "
            f"{point['speedup']:.2f}x")
    lines.append(f"  scenario-grid vectorised throughput: "
                 f"{generation['scenario_vector_inst_per_s']:,} inst/s "
                 f"({generation['scenario_speedup']:.2f}x over the scalar "
                 f"oracle)")
    return "\n".join(lines)


#: Parameters of the CI-sized serve probe: small enough for seconds of
#: wall clock, concurrent enough (6 clients over a 12-point pool) that
#: single-flight joins and cache hits both actually occur.
SERVE_PROBE_SETTINGS = dict(clients=6, requests=90, pool_size=12,
                            zipf_skew=1.1, trace_length=1_000, seed=9)


def collect_serve_probe(**overrides) -> dict:
    """Run the CI-sized zipf load probe against an in-process server.

    Self-hosts a loopback server with the serial compute worker over a
    fresh temporary store (every first touch is a genuine miss), so the
    resulting hit rate is a deterministic function of the sampled
    request stream — exactly comparable PR over PR.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.serve.loadgen import collect_serve_report

    settings = dict(SERVE_PROBE_SETTINGS)
    settings.update(overrides)
    return collect_serve_report(None, **settings)


def serve_probe_gateable(serve: dict) -> bool:
    """True when a serve section may be gated: it answered requests,
    saw no client-visible errors, and the store never degraded."""
    return bool(serve.get("answered")) and not serve.get("errors") \
        and not serve.get("cache_degradation_reason")


# ----------------------------------------------------------------------
# The CI regression gate.
# ----------------------------------------------------------------------
def scheduler_throughput(scheduler: dict) -> float:
    """Aggregate simulated cycles/s of a snapshot's scheduler probe."""
    points = scheduler.get("points", [])
    wall = sum(p["wall_clock_s"] for p in points)
    return sum(p["cycles"] for p in points) / wall if wall else 0.0


def probe_backend_label(scheduler: dict) -> str:
    """The backend a scheduler probe actually ran on.

    ``"python"`` / ``"compiled"`` when every point agrees (points
    predating the backend split count as Python), ``"mixed"`` otherwise
    — a mixed or fallen-back probe must never be gated against a true
    compiled baseline.
    """
    backends = {point.get("engine_backend", "python")
                for point in scheduler.get("points", [])}
    return backends.pop() if len(backends) == 1 else "mixed"


def find_latest_snapshot(root: Path) -> "Optional[Path]":
    """Newest committed ``BENCH_*.json``.

    Snapshots are ordered by the numeric runs in their names (date, then
    PR number or timestamp), so ``BENCH_20260728T150000Z.json`` ranks
    above ``BENCH_20260728_pr4.json`` from earlier the same day — a
    plain lexicographic sort would rank them the other way around
    (``_`` sorts after ``T``).
    """
    import re

    snapshots = sorted(
        root.glob("BENCH_*.json"),
        key=lambda path: ([int(token) for token in
                           re.findall(r"\d+", path.name)], path.name))
    return snapshots[-1] if snapshots else None


def compare_against_baseline(current: dict, baseline: dict,
                             tolerance: float) -> list:
    """Regression messages for every tracked metric slower than
    ``baseline / tolerance``; empty when the gate passes.

    Metrics the baseline snapshot does not carry (older snapshots lack
    the generation probe) are skipped — the gate only tightens once a
    snapshot recording the metric is committed.
    """
    if tolerance < 1.0:
        raise ValueError("tolerance must be >= 1.0")
    regressions = []

    def check(label, now, then):
        if then and now < then / tolerance:
            regressions.append(
                f"{label}: {now:,.0f} vs baseline {then:,.0f} "
                f"(more than {tolerance:g}x slower)")

    # Like-for-like only: each backend's probe is gated against the same
    # backend's baseline.  A probe that fell back to the Python engine is
    # excluded from the compiled comparison rather than failing it — the
    # fallback itself is reported by the probe summary and the tests.
    for section, backend, kind in (
            ("scheduler", "python", "scheduler"),
            ("scheduler_compiled", "compiled", "scheduler"),
            ("sweep_point", "python", "sweep-point"),
            ("sweep_point_compiled", "compiled", "sweep-point")):
        baseline_scheduler = baseline.get(section) or {}
        current_scheduler = current.get(section) or {}
        if not (baseline_scheduler.get("points")
                and current_scheduler.get("points")):
            continue
        if (probe_backend_label(baseline_scheduler) != backend
                or probe_backend_label(current_scheduler) != backend):
            continue
        check(f"{backend}-engine {kind} probe simulated cycles/s",
              scheduler_throughput(current_scheduler),
              scheduler_throughput(baseline_scheduler))
    baseline_generation = baseline.get("generation") or {}
    current_generation = current.get("generation") or {}
    check("scenario-grid generation inst/s",
          current_generation.get("scenario_vector_inst_per_s", 0.0),
          baseline_generation.get("scenario_vector_inst_per_s", 0.0))
    # The scalar-vs-vector speedup ratio is measured within one run, so
    # it is machine-independent: a drop here is a genuine vectorisation
    # regression even when the absolute numbers moved with the hardware.
    check("scenario-grid generation speedup (vector/scalar ratio)",
          current_generation.get("scenario_speedup", 0.0),
          baseline_generation.get("scenario_speedup", 0.0))
    # Serve probe: gate the service's throughput and its cache +
    # single-flight hit rate.  Strictly like-for-like, mirroring the
    # engine sections: both runs must be clean (no degradation, no
    # errors) and describe the same offered load — a probe whose shape
    # changed measures a different workload, not a regression.
    baseline_serve = baseline.get("serve") or {}
    current_serve = current.get("serve") or {}
    if (serve_probe_gateable(baseline_serve)
            and serve_probe_gateable(current_serve)
            and all(baseline_serve.get(field) == current_serve.get(field)
                    for field in ("clients", "requests", "pool_size",
                                  "zipf_skew", "trace_length", "seed"))):
        check("serve probe requests/s",
              current_serve.get("requests_per_s", 0.0),
              baseline_serve.get("requests_per_s", 0.0))
        check("serve probe hit rate (%)",
              current_serve.get("hit_rate", 0.0) * 100.0,
              baseline_serve.get("hit_rate", 0.0) * 100.0)
    return regressions


def format_probe_summary(scheduler: dict) -> str:
    """Human/CI-readable recap of the scheduler probe (markdown-friendly)."""
    backend = probe_backend_label(scheduler)
    requested = scheduler.get("engine_requested", "python")
    label = backend if backend == requested \
        else f"{backend}, requested {requested}"
    lines = [f"scheduler probe (trace length {scheduler['trace_length']}, "
             f"engine {label}):"]
    for point in scheduler["points"]:
        lines.append(
            f"  {point['benchmark']}/{point['policy']}/"
            f"P{point['num_registers']:<3}  {point['wall_clock_s']:6.3f}s  "
            f"skip={point['skip_fraction']:.0%}  "
            f"ff={point['fast_forwards']}  "
            f"ready_peak={point['ready_set_peak']}  ipc={point['ipc']:.2f}")
    lines.append(f"  probe cycles_skipped fraction: "
                 f"{scheduler['probe_skip_fraction']:.1%}")
    throughput = sum(p["cycles"] / p["wall_clock_s"]
                     for p in scheduler["points"] if p["wall_clock_s"])
    lines.append(f"  aggregate simulated cycles/s over the probe: "
                 f"{throughput:,.0f}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the benchmark harness and write a BENCH_*.json snapshot.")
    parser.add_argument("--output", default=None,
                        help="snapshot path (default: BENCH_<UTC timestamp>.json "
                             "in the repository root)")
    parser.add_argument("--select", default=None,
                        help="pytest -k expression to run a subset of the harness")
    parser.add_argument("--probe-only", action="store_true",
                        help="skip the pytest harness and the Figure 11 grid "
                             "comparison; run the fast scheduler, generation "
                             "and serve probes, gate against the newest "
                             "committed "
                             "BENCH_*.json, and print the summary (CI "
                             "signal). Appends to $GITHUB_STEP_SUMMARY when "
                             "set.")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get("BENCH_PROBE_TOLERANCE",
                                                     "1.4")),
                        help="probe-only regression gate: fail when a probe "
                             "throughput is more than this factor slower "
                             "than the committed baseline (default 1.4, "
                             "or $BENCH_PROBE_TOLERANCE)")
    parser.add_argument("--no-compare", action="store_true",
                        help="probe-only: skip the baseline regression gate")
    parser.add_argument("--engine", default="python",
                        choices=["python", "compiled", "both"],
                        help="probe-only: which engine backends to run the "
                             "scheduler probe on (default: python; the full "
                             "snapshot always records both)")
    args = parser.parse_args(argv)

    if args.probe_only:
        current = {}
        summaries = []
        if args.engine in ("python", "both"):
            scheduler = collect_scheduler_counters(include_grid=False)
            current["scheduler"] = scheduler
            summaries.append(format_probe_summary(scheduler))
            sweep_point = collect_sweep_point_probe()
            current["sweep_point"] = sweep_point
            summaries.append(format_sweep_point_summary(sweep_point))
        if args.engine in ("compiled", "both"):
            compiled_scheduler = collect_scheduler_counters(
                include_grid=False, engine="compiled")
            current["scheduler_compiled"] = compiled_scheduler
            summaries.append(format_probe_summary(compiled_scheduler))
            compiled_sweep_point = collect_sweep_point_probe(
                engine="compiled")
            current["sweep_point_compiled"] = compiled_sweep_point
            summaries.append(format_sweep_point_summary(compiled_sweep_point))
        generation = collect_generation_throughput(trace_length=20_000)
        current["generation"] = generation
        summaries.append(format_generation_summary(generation))
        from repro.serve.loadgen import format_report

        serve = collect_serve_probe()
        current["serve"] = serve
        summaries.append(format_report(serve))
        summary = "\n".join(summaries)

        gate_lines = []
        returncode = 0
        if not args.no_compare:
            baseline_path = find_latest_snapshot(REPO_ROOT)
            if baseline_path is None:
                gate_lines.append("bench gate: no committed BENCH_*.json "
                                  "baseline; gate skipped")
            else:
                with open(baseline_path) as handle:
                    baseline = json.load(handle)
                regressions = compare_against_baseline(current, baseline,
                                                       args.tolerance)
                if regressions:
                    returncode = 1
                    gate_lines.append(
                        f"bench gate: REGRESSION vs {baseline_path.name} "
                        f"(tolerance {args.tolerance:g}x):")
                    gate_lines.extend("  " + line for line in regressions)
                else:
                    gate_lines.append(
                        f"bench gate: ok vs {baseline_path.name} "
                        f"(tolerance {args.tolerance:g}x)")
        summary = summary + "\n" + "\n".join(gate_lines)
        print(summary)
        if args.output:
            probe_path = Path(args.output).resolve()
            with open(probe_path, "w") as handle:
                json.dump(current, handle, indent=2)
            print(f"wrote probe JSON to {probe_path}")
        step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
        if step_summary:
            with open(step_summary, "a") as handle:
                handle.write("### Bench probe\n\n```\n" + summary + "\n```\n")
        return returncode

    if args.output is None:
        stamp = datetime.datetime.now(datetime.timezone.utc).strftime("%Y%m%dT%H%M%SZ")
        output = REPO_ROOT / f"BENCH_{stamp}.json"
    else:
        output = Path(args.output).resolve()

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")

    command = [sys.executable, "-m", "pytest", "benchmarks", "-q",
               "--benchmark-json", str(output)]
    if args.select:
        command += ["-k", args.select]
    returncode = subprocess.call(command, cwd=REPO_ROOT, env=env)
    if returncode != 0:
        return returncode

    # Embed the scheduler, sweep-point (both backends) and generation
    # probes.
    scheduler = collect_scheduler_counters()
    compiled_scheduler = collect_scheduler_counters(include_grid=False,
                                                    engine="compiled")
    sweep_point = collect_sweep_point_probe()
    compiled_sweep_point = collect_sweep_point_probe(engine="compiled")
    generation = collect_generation_throughput()
    # The serve section keeps the CI probe's shape so the gate compares
    # like-for-like against it.
    serve = collect_serve_probe()
    with open(output) as handle:
        payload = json.load(handle)
    payload["scheduler"] = scheduler
    payload["scheduler_compiled"] = compiled_scheduler
    payload["sweep_point"] = sweep_point
    payload["sweep_point_compiled"] = compiled_sweep_point
    payload["generation"] = generation
    payload["serve"] = serve
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2)

    # Human-readable recap of what was recorded.
    benches = payload.get("benchmarks", [])
    print(f"\nwrote {output} ({len(benches)} benchmarks)")
    for bench in sorted(benches, key=lambda b: b["stats"]["mean"], reverse=True):
        print(f"  {bench['stats']['mean']:8.2f}s  {bench['name']}")
    print()
    print(format_probe_summary(scheduler))
    print(format_probe_summary(compiled_scheduler))
    print(format_sweep_point_summary(sweep_point))
    print(format_sweep_point_summary(compiled_sweep_point))
    print(format_generation_summary(generation))
    from repro.serve.loadgen import format_report

    print(format_report(serve))
    grid = scheduler["figure11_grid"]
    print(f"figure11 grid ({grid['points']} points, sizes {grid['sizes']}): "
          f"skip={grid['skip_fraction']:.2%} vs PR1 semantics "
          f"{grid['pr1_semantics_skip_fraction']:.2%} "
          f"({grid['points_skipping_strictly_more']} points strictly higher)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
