#!/usr/bin/env python
"""Check intra-repository links in the markdown docs.

Scans ``docs/*.md`` plus the top-level markdown files for
``[text](target)`` links and verifies that every non-external target
(no scheme, no leading ``#``) resolves to an existing file or directory
relative to the linking document.  Exits non-zero listing every dead
link.  Run from anywhere::

    python scripts/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: markdown files whose links are checked.
DOC_FILES = sorted(
    list((REPO_ROOT / "docs").glob("*.md")) + list(REPO_ROOT.glob("*.md"))
)

#: inline markdown links; deliberately simple — the docs do not use
#: reference-style links or angle-bracket targets.
LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

EXTERNAL = ("http://", "https://", "mailto:")


def dead_links(path: Path) -> list:
    """Return (target, reason) pairs for every unresolvable link in ``path``."""
    problems = []
    for target in LINK_RE.findall(path.read_text()):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        plain = target.split("#", 1)[0]
        if not plain:
            continue
        resolved = (path.parent / plain).resolve()
        if not resolved.exists():
            problems.append((target, f"no such path: {resolved}"))
        elif REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
            problems.append((target, "points outside the repository"))
    return problems


def main() -> int:
    failures = 0
    for path in DOC_FILES:
        for target, reason in dead_links(path):
            print(f"{path.relative_to(REPO_ROOT)}: dead link {target!r} ({reason})")
            failures += 1
    checked = len(DOC_FILES)
    if failures:
        print(f"{failures} dead link(s) across {checked} files")
        return 1
    print(f"all intra-repo links resolve ({checked} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
