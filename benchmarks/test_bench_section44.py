"""Benchmark: regenerate the Section 4.4 energy-neutrality and storage numbers."""

import pytest

from repro.experiments import section44

from benchmarks.conftest import run_once


def test_bench_section44(benchmark):
    result = run_once(benchmark, section44.run)
    assert result.energy_ratio == pytest.approx(1.0, abs=0.05)
    assert result.extended_storage_bytes == pytest.approx(1.22 * 1024, rel=0.01)
    benchmark.extra_info["energy_conv_pj"] = round(result.energy_conv_pj, 1)
    benchmark.extra_info["energy_early_pj"] = round(result.energy_early_pj, 1)
    benchmark.extra_info["extended_storage_bytes"] = round(
        result.extended_storage_bytes, 1)
    benchmark.extra_info["lus_tables_bytes"] = round(result.lus_tables_bytes, 1)
