"""Benchmark: regenerate the Section 3.3 basic-mechanism speedups."""

from repro.experiments import section33

from benchmarks.conftest import BENCH_TRACE_LENGTH, run_once


def test_bench_section33(benchmark):
    result = run_once(benchmark, section33.run,
                      trace_length=BENCH_TRACE_LENGTH, sizes=(64, 48, 40),
                      parallel=True)
    # Shape: the basic mechanism helps the FP suite at tight sizes, and helps
    # more as the file gets tighter (paper: 3% → 6% → 9%).
    assert result.speedup_percent("fp", 40) > 0
    assert result.speedup_percent("fp", 40) >= result.speedup_percent("fp", 64) - 1.0
    for size in (64, 48, 40):
        benchmark.extra_info[f"fp_basic_speedup_at_{size}_pct"] = round(
            result.speedup_percent("fp", size), 1)
        benchmark.extra_info[f"int_basic_speedup_at_{size}_pct"] = round(
            result.speedup_percent("int", size), 1)
    benchmark.extra_info["paper_fp_pct"] = {64: 3.0, 48: 6.0, 40: 9.0}
    benchmark.extra_info["paper_int_pct"] = {64: 0.0, 48: 0.0, 40: 5.0}
