"""Benchmark: regenerate the Figure 2 register-lifecycle example."""

import pytest

from repro.core.register_state import RegState
from repro.experiments import figure2

from benchmarks.conftest import run_once


@pytest.mark.parametrize("policy", ["conv", "basic", "extended"])
def test_bench_figure2(benchmark, policy):
    result = run_once(benchmark, figure2.run, policy)
    durations = result.state_durations()
    assert RegState.READY in durations
    benchmark.extra_info["policy"] = policy
    benchmark.extra_info["idle_cycles"] = durations.get(RegState.IDLE, 0)
    # The paper's point: the early-release schemes remove the Idle interval.
    if policy != "conv":
        conv_idle = figure2.run("conv").state_durations().get(RegState.IDLE, 0)
        assert durations.get(RegState.IDLE, 0) <= conv_idle
