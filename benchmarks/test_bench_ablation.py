"""Ablation benchmarks for the design choices called out in DESIGN.md.

* wrong-path injection on/off — how much of the early-release benefit and
  of the register pressure comes from wrong-path instructions;
* register reuse on a committed last use on/off (paper Section 3,
  Renaming 2);
* Release Queue depth (maximum pending branches) sensitivity.
"""

import pytest

from repro.analysis.metrics import percentage_speedup
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import simulate
from repro.trace.workloads import get_workload

from benchmarks.conftest import BENCH_TRACE_LENGTH, run_once

TIGHT = 48


def run_point(benchmark_name, policy, **kwargs):
    trace = get_workload(benchmark_name, BENCH_TRACE_LENGTH)
    config = ProcessorConfig(release_policy=policy, num_physical_int=TIGHT,
                             num_physical_fp=TIGHT, **kwargs)
    return simulate(trace, config)


def test_bench_ablation_wrong_path(benchmark):
    """Early-release speedup with and without wrong-path injection."""

    def run_ablation():
        results = {}
        for wrong_path in (True, False):
            conv = run_point("swim", "conv", enable_wrong_path=wrong_path)
            extended = run_point("swim", "extended", enable_wrong_path=wrong_path)
            results[wrong_path] = (conv.ipc, extended.ipc)
        return results

    results = run_once(benchmark, run_ablation)
    with_wp = percentage_speedup(results[True][1], results[True][0])
    without_wp = percentage_speedup(results[False][1], results[False][0])
    assert results[True][1] > 0 and results[False][1] > 0
    benchmark.extra_info["extended_speedup_with_wrong_path_pct"] = round(with_wp, 1)
    benchmark.extra_info["extended_speedup_without_wrong_path_pct"] = round(without_wp, 1)


def test_bench_ablation_register_reuse(benchmark):
    """The register-reuse shortcut of the basic mechanism (C=1 case)."""

    def run_ablation():
        with_reuse = run_point("swim", "basic", reuse_on_committed_lu=True)
        without_reuse = run_point("swim", "basic", reuse_on_committed_lu=False)
        return with_reuse, without_reuse

    with_reuse, without_reuse = run_once(benchmark, run_ablation)
    # Both variants must be functional wins over nothing; reuse additionally
    # avoids allocations.
    assert with_reuse.fp_registers.register_reuses > 0
    assert without_reuse.fp_registers.register_reuses == 0
    assert without_reuse.fp_registers.immediate_releases > 0
    benchmark.extra_info["ipc_with_reuse"] = round(with_reuse.ipc, 3)
    benchmark.extra_info["ipc_without_reuse"] = round(without_reuse.ipc, 3)
    benchmark.extra_info["allocations_with_reuse"] = with_reuse.fp_registers.allocations
    benchmark.extra_info["allocations_without_reuse"] = \
        without_reuse.fp_registers.allocations


@pytest.mark.parametrize("max_pending", [4, 20])
def test_bench_ablation_release_queue_depth(benchmark, max_pending):
    """Sensitivity of the extended mechanism to the pending-branch limit."""
    result = run_once(benchmark, run_point, "gcc", "extended",
                      max_pending_branches=max_pending)
    assert result.ipc > 0
    benchmark.extra_info["max_pending_branches"] = max_pending
    benchmark.extra_info["ipc"] = round(result.ipc, 3)
    benchmark.extra_info["checkpoint_stalls"] = \
        result.dispatch_stalls.get("checkpoints_full", 0)


def test_bench_simulator_throughput(benchmark):
    """Raw simulator speed (simulated instructions per host second)."""
    trace = get_workload("swim", BENCH_TRACE_LENGTH)
    config = ProcessorConfig(release_policy="extended", num_physical_int=96,
                             num_physical_fp=96)

    stats = run_once(benchmark, simulate, trace, config)
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["simulated_instructions"] = stats.committed_instructions
    benchmark.extra_info["instructions_per_second"] = int(
        stats.committed_instructions / seconds) if seconds else 0
