"""Benchmark: regenerate Figure 3 (Empty/Ready/Idle occupancy, conventional)."""

from repro.experiments import figure3

from benchmarks.conftest import BENCH_TRACE_LENGTH, run_once


def test_bench_figure3(benchmark):
    result = run_once(benchmark, figure3.run,
                      trace_length=BENCH_TRACE_LENGTH, parallel=True)
    int_overhead = result.idle_overhead("int")
    fp_overhead = result.idle_overhead("fp")
    # Shape check (paper: 45.8% int vs 16.8% fp): both positive, int larger.
    assert int_overhead > 0 and fp_overhead > 0
    assert int_overhead > fp_overhead
    benchmark.extra_info["idle_overhead_int_pct"] = round(int_overhead, 1)
    benchmark.extra_info["idle_overhead_fp_pct"] = round(fp_overhead, 1)
    benchmark.extra_info["paper_int_pct"] = 45.8
    benchmark.extra_info["paper_fp_pct"] = 16.8
    benchmark.extra_info["allocated_int"] = round(result.suite_mean("int").allocated, 1)
    benchmark.extra_info["allocated_fp"] = round(result.suite_mean("fp").allocated, 1)
