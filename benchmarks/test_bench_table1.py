"""Benchmark: regenerate Table 1 (processor survey)."""

from repro.experiments import table1

from benchmarks.conftest import run_once


def test_bench_table1(benchmark):
    result = run_once(benchmark, table1.run)
    rows = result.rows()
    assert len(rows) == 4
    benchmark.extra_info["processors"] = [row[0] for row in rows]
    benchmark.extra_info["loose"] = [entry.name for entry in result.entries
                                     if entry.paper_classification == "loose"]
