"""Benchmark: regenerate Figure 10 (per-benchmark IPC at 48int+48FP registers)."""

from repro.experiments import figure10

from benchmarks.conftest import BENCH_TRACE_LENGTH, run_once


def test_bench_figure10(benchmark):
    result = run_once(benchmark, figure10.run,
                      trace_length=BENCH_TRACE_LENGTH, parallel=True)
    fp_basic = result.suite_speedup_percent("fp", "basic")
    fp_extended = result.suite_speedup_percent("fp", "extended")
    int_extended = result.suite_speedup_percent("int", "extended")
    # Shape checks against the paper (+6% basic / +8% extended FP, +5% int ext):
    # early release must clearly help the FP suite and help it more than the
    # integer suite at this very tight size.
    assert fp_basic > 0
    assert fp_extended > 0
    assert fp_extended > int_extended
    benchmark.extra_info["hm_ipc_fp_conv"] = round(result.harmonic_mean("fp", "conv"), 3)
    benchmark.extra_info["hm_ipc_int_conv"] = round(result.harmonic_mean("int", "conv"), 3)
    benchmark.extra_info["fp_basic_speedup_pct"] = round(fp_basic, 1)
    benchmark.extra_info["fp_extended_speedup_pct"] = round(fp_extended, 1)
    benchmark.extra_info["int_basic_speedup_pct"] = round(
        result.suite_speedup_percent("int", "basic"), 1)
    benchmark.extra_info["int_extended_speedup_pct"] = round(int_extended, 1)
    benchmark.extra_info["paper_fp_basic_pct"] = 6.0
    benchmark.extra_info["paper_fp_extended_pct"] = 8.0
    benchmark.extra_info["paper_int_extended_pct"] = 5.0
