"""Benchmark: regenerate Figure 9 (LUs Table vs register file delay/energy)."""

import pytest

from repro.experiments import figure9

from benchmarks.conftest import run_once


def test_bench_figure9(benchmark):
    result = run_once(benchmark, figure9.run)
    assert result.access_time_ns["LUsT"][0] == pytest.approx(0.98, abs=1e-6)
    assert result.lus_delay_margin_vs_smallest_int() == pytest.approx(0.26, abs=0.01)
    benchmark.extra_info["lus_access_time_ns"] = result.access_time_ns["LUsT"][0]
    benchmark.extra_info["lus_energy_pj"] = result.energy_pj["LUsT"][0]
    benchmark.extra_info["int160_access_time_ns"] = round(
        result.access_time_ns["INT"][-1], 3)
    benchmark.extra_info["fp160_energy_pj"] = round(result.energy_pj["FP"][-1], 1)
