"""Benchmark: regenerate Table 4 (register file sizes giving equal IPC)."""

from repro.experiments import table4

from benchmarks.conftest import run_once


def test_bench_table4(benchmark, figure11_sweep):
    result = run_once(benchmark, table4.derive, figure11_sweep)
    fp_rows = result.rows_for("fp")
    assert fp_rows
    # The paper's qualitative claim: the FP file can shrink at equal IPC.
    savings = [row.saved_percent for row in fp_rows if row.saved_percent is not None]
    assert savings and max(savings) > 0
    benchmark.extra_info["fp_mean_saving_pct"] = round(result.mean_saving_percent("fp"), 1)
    benchmark.extra_info["int_mean_saving_pct"] = round(result.mean_saving_percent("int"), 1)
    benchmark.extra_info["paper_fp_savings_pct"] = (7.2, 8.9)
    benchmark.extra_info["paper_int_savings_pct"] = (12.5, 11.1)
    benchmark.extra_info["rows"] = [
        (row.suite, row.conv_size,
         None if row.extended_size is None else round(row.extended_size, 1))
        for row in result.rows]
