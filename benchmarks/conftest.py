"""Shared configuration for the benchmark harness.

Every module in this directory regenerates one table or figure of the
paper (or an ablation of a design choice) under ``pytest-benchmark``.
Each regeneration runs exactly once per benchmark (rounds=1): the quantity
being "benchmarked" is the wall-clock cost of reproducing the artefact,
and the artefact's headline numbers are attached to the benchmark's
``extra_info`` so they appear in the saved benchmark data.

The scales below are reduced relative to the defaults of
``repro.experiments`` (shorter traces, slightly coarser register-size
grids) so the full harness completes in a few minutes on a laptop; run the
experiments through ``repro-experiments`` for the full-scale numbers.
"""

from __future__ import annotations

import pytest

#: Dynamic instructions per benchmark simulation used by the harness.
BENCH_TRACE_LENGTH = 4_000

#: Register-file sizes used for the Figure 11 / Table 4 sweeps.
BENCH_SIZES = (40, 48, 56, 64, 80, 96, 128, 160)


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def figure11_sweep():
    """One shared Figure 11 sweep reused by the Figure 11 and Table 4 benches."""
    from repro.experiments import figure11

    return figure11.run(trace_length=BENCH_TRACE_LENGTH, sizes=BENCH_SIZES,
                        parallel=True)
