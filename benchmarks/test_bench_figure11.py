"""Benchmark: regenerate Figure 11 (harmonic-mean IPC vs register file size)."""

from repro.experiments import figure11

from benchmarks.conftest import BENCH_SIZES, BENCH_TRACE_LENGTH, run_once


def test_bench_figure11(benchmark, figure11_sweep):
    # The sweep itself is shared (session fixture); the benchmarked quantity
    # is one full regeneration at the harness scale.
    result = run_once(benchmark, figure11.run,
                      trace_length=BENCH_TRACE_LENGTH, sizes=(40, 64, 96, 160),
                      parallel=True)
    # Shape checks on the full shared sweep (finer grid):
    fp_speedups = dict(figure11_sweep.speedup_curve("fp", "extended"))
    # Gains shrink as the file grows and essentially vanish at the loose end.
    assert fp_speedups[min(BENCH_SIZES)] > fp_speedups[max(BENCH_SIZES)] - 1.0
    assert abs(fp_speedups[max(BENCH_SIZES)]) < 6.0
    # IPC curves are (weakly) increasing in the register count for both the
    # quick regeneration and the shared sweep.
    for suite in ("int", "fp"):
        curve = dict(result.curve(suite, "conv"))
        assert curve[160] >= curve[40] - 0.05
    benchmark.extra_info["fp_extended_speedup_at_40_pct"] = round(fp_speedups[40], 1)
    benchmark.extra_info["fp_extended_speedup_at_96_pct"] = round(fp_speedups[96], 1)
    benchmark.extra_info["fp_extended_speedup_at_160_pct"] = round(fp_speedups[160], 1)
    int_speedups = dict(figure11_sweep.speedup_curve("int", "extended"))
    benchmark.extra_info["int_extended_speedup_at_40_pct"] = round(int_speedups[40], 1)
    benchmark.extra_info["int_extended_speedup_at_96_pct"] = round(int_speedups[96], 1)
    benchmark.extra_info["paper_fp_range_pct"] = "10 → 2 (40 → 104 regs)"
    benchmark.extra_info["paper_int_range_pct"] = "11 → 2 (40 → 64 regs)"
