#!/usr/bin/env python
"""Design-space exploration: shrink the register file without losing IPC.

This is the paper's Table 4 / Section 4.4 use-case as a workflow: given a
performance target (the IPC of a conventional-release design with a
reference register file), find the smallest register file each release
policy needs to reach that target, and translate the saving into access
time and energy with the Rixner-style model.

Usage::

    python examples/design_space_exploration.py [suite] [reference_size] [instructions]

``suite`` is "fp" (default) or "int".
"""

import sys

from repro.analysis.reporting import format_table
from repro.analysis.sweep import SweepConfig, run_sweep
from repro.pipeline.config import ProcessorConfig
from repro.power.rixner_model import RixnerModel
from repro.trace import fp_workloads, integer_workloads

SIZES = (40, 48, 56, 64, 72, 80, 96, 112)
POLICIES = ("conv", "basic", "extended")


def main() -> int:
    suite = sys.argv[1] if len(sys.argv) > 1 else "fp"
    reference_size = int(sys.argv[2]) if len(sys.argv) > 2 else 80
    instructions = int(sys.argv[3]) if len(sys.argv) > 3 else 6_000
    benchmarks = fp_workloads() if suite == "fp" else integer_workloads()

    print(f"suite={suite}  reference design: conventional release with "
          f"{reference_size} registers\n")
    sweep = run_sweep(SweepConfig(benchmarks=tuple(benchmarks), policies=POLICIES,
                                  register_sizes=SIZES,
                                  trace_length=instructions,
                                  base_config=ProcessorConfig()),
                      parallel=True)

    target_ipc = sweep.harmonic_mean_ipc(benchmarks, "conv", reference_size)
    model = RixnerModel()
    geometry = (model.fp_register_file if suite == "fp"
                else model.int_register_file)

    rows = []
    for policy in POLICIES:
        needed = sweep.iso_ipc_size(benchmarks, policy, target_ipc)
        if needed is None:
            rows.append([policy, "-", "-", "-", "-"])
            continue
        saving = 100.0 * (reference_size - needed) / reference_size
        access_time = model.access_time_ns(geometry(int(round(needed))))
        energy = model.energy_pj(geometry(int(round(needed))))
        rows.append([policy, f"{needed:.1f}", f"{saving:+.1f}%",
                     f"{access_time:.2f} ns", f"{energy:.0f} pJ"])

    print(format_table(
        ["policy", "registers needed", "saving vs reference",
         "register file access time", "energy / access"],
        rows,
        title=f"Registers needed to reach harmonic-mean IPC = {target_ipc:.3f}"))
    reference_time = model.access_time_ns(geometry(reference_size))
    print(f"\nreference file access time: {reference_time:.2f} ns — shrinking the "
          "file with early release buys access-time headroom (paper Section 7).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
