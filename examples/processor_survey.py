#!/usr/bin/env python
"""Processor survey: Table 1 plus the hardware cost of adding early release.

Prints the paper's survey of commercial merged-register-file processors
(Table 1) and, for each of them, what the extended early-release mechanism
would cost in storage (Section 4.4's sizing exercise, generalised beyond
the Alpha 21264 example).

Usage::

    python examples/processor_survey.py
"""

import sys

from repro.analysis.reporting import format_table
from repro.experiments import table1
from repro.power.storage import StorageModel


def main() -> int:
    survey = table1.run()
    print(survey.format())
    print()

    rows = []
    for entry in survey.entries:
        model = StorageModel(ros_size=entry.reorder_size,
                             num_physical_int=entry.int_physical,
                             num_physical_fp=entry.fp_physical,
                             max_pending_branches=20,
                             num_logical=entry.logical_int)
        rows.append([
            entry.name,
            f"{model.basic_mechanism_bytes():.0f} B",
            f"{model.extended_mechanism_bytes():.0f} B",
            f"{model.lus_tables_bytes():.0f} B",
            f"{model.total_extended_bytes() / 1024:.2f} KB",
        ])
    print(format_table(
        ["processor", "basic mechanism", "extended mechanism", "LUs Tables",
         "total (extended)"],
        rows,
        title="Storage cost of adding early register release (Section 4.4 model)"))
    print("\npaper reference point: ≈1.22 KB + ≈128 B for an Alpha-21264-like "
          "machine (ROS 80, 152 physical registers, 20 pending branches).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
