#!/usr/bin/env python
"""Quickstart: simulate one benchmark under the three release policies.

Runs the synthetic ``swim`` workload on the paper's 8-way processor with a
very tight 48int + 48FP register file and prints the IPC obtained with
conventional release and with the basic/extended early-release mechanisms
— a one-screen version of the paper's headline result.

Usage::

    python examples/quickstart.py [benchmark] [registers] [instructions]
"""

import sys

from repro import ProcessorConfig, simulate
from repro.analysis.metrics import percentage_speedup
from repro.trace import get_workload


def main() -> int:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "swim"
    registers = int(sys.argv[2]) if len(sys.argv) > 2 else 48
    instructions = int(sys.argv[3]) if len(sys.argv) > 3 else 8_000

    print(f"benchmark={benchmark}  registers={registers}int+{registers}FP  "
          f"instructions={instructions}\n")
    trace = get_workload(benchmark, instructions)
    summary = trace.summary()
    print(f"trace: {summary.length} instructions, "
          f"{summary.branch_fraction:.1%} branches, "
          f"{summary.load_fraction:.1%} loads, "
          f"{summary.store_fraction:.1%} stores\n")

    results = {}
    for policy in ("conv", "basic", "extended"):
        config = ProcessorConfig(release_policy=policy,
                                 num_physical_int=registers,
                                 num_physical_fp=registers)
        results[policy] = simulate(trace, config)
        print(results[policy].summary_line())

    conv_ipc = results["conv"].ipc
    print()
    for policy in ("basic", "extended"):
        gain = percentage_speedup(results[policy].ipc, conv_ipc)
        print(f"{policy:<9s} speedup over conventional release: {gain:+.1f}%")
    focus = trace.focus_class.short_name
    early = results["extended"].register_stats(focus).early_releases
    print(f"\nextended mechanism performed {early} early releases "
          f"on the {focus} register file "
          f"({results['extended'].register_stats(focus).early_release_fraction:.0%} "
          f"of all releases).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
