#!/usr/bin/env python
"""Register-pressure study: how IPC and register occupancy react to file size.

Sweeps the physical register file size for one benchmark under the three
release policies (a single-benchmark slice of the paper's Figure 11) and
prints, for each size, the IPC plus the Empty/Ready/Idle occupancy of the
benchmark's focus register file — making it visible *why* early release
helps: the Idle bar of conventional release turns into free registers.

Usage::

    python examples/register_pressure_study.py [benchmark] [instructions]
"""

import sys

from repro.analysis.reporting import format_table
from repro.analysis.sweep import SweepConfig, run_sweep
from repro.pipeline.config import ProcessorConfig
from repro.trace import get_profile

SIZES = (40, 48, 64, 80, 96, 128, 160)
POLICIES = ("conv", "basic", "extended")


def main() -> int:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "tomcatv"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 8_000
    focus = get_profile(benchmark).focus_class.short_name

    sweep = run_sweep(SweepConfig(benchmarks=(benchmark,), policies=POLICIES,
                                  register_sizes=SIZES,
                                  trace_length=instructions,
                                  base_config=ProcessorConfig()),
                      parallel=True)

    rows = []
    for size in SIZES:
        row = [size]
        for policy in POLICIES:
            row.append(sweep.ipc(benchmark, policy, size))
        conv_occupancy = sweep.stats(benchmark, "conv", size).register_stats(
            focus).occupancy
        extended_occupancy = sweep.stats(benchmark, "extended", size).register_stats(
            focus).occupancy
        row.append(conv_occupancy.idle)
        row.append(extended_occupancy.idle)
        rows.append(row)

    print(format_table(
        ["P", "IPC conv", "IPC basic", "IPC extended",
         f"idle {focus} regs (conv)", f"idle {focus} regs (extended)"],
        rows,
        title=f"{benchmark}: IPC and idle-register occupancy vs register file size",
        float_digits=2))

    tightest, loosest = SIZES[0], SIZES[-1]
    gain_tight = 100 * (sweep.ipc(benchmark, "extended", tightest)
                        / sweep.ipc(benchmark, "conv", tightest) - 1)
    gain_loose = 100 * (sweep.ipc(benchmark, "extended", loosest)
                        / sweep.ipc(benchmark, "conv", loosest) - 1)
    print(f"\nextended-release gain: {gain_tight:+.1f}% at P={tightest}, "
          f"{gain_loose:+.1f}% at P={loosest} "
          "(the paper's Figure 11 shape: large when tight, none when loose)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
