"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file
declares just enough (package layout + console scripts) for the package
to be installed in environments without the ``wheel`` package (offline
machines), via::

    pip install -e . --no-use-pep517 --no-build-isolation

CI never installs the package — every job runs with ``PYTHONPATH=src``
and the module entry points (``python -m repro.experiments.runner``,
``python -m repro.serve``, ``python -m repro.checks``), which behave
identically to the console scripts declared here.
"""

from setuptools import find_packages, setup

setup(
    name="repro-early-register-release",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.runner:main",
            "repro-serve=repro.serve.cli:serve_main",
            "repro-lint=repro.checks.cli:main",
        ],
    },
)
