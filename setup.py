"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so the package can be installed in environments without the
``wheel`` package (offline machines), via::

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
